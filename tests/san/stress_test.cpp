// Stress and robustness tests of the SAN kernel: randomized net shapes,
// deep instantaneous chains, many activities, and pathological timings.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "san/simulator.hpp"
#include "stats/distribution.hpp"

namespace vcpusim::san {
namespace {

TEST(SanStress, RandomizedTokenRingConservesTokens) {
  // A ring of N places; each hop moves one token to the next place with
  // a random-rate exponential activity. Total tokens are conserved
  // through hundreds of thousands of events.
  constexpr int kPlaces = 12;
  constexpr std::int64_t kTokens = 30;
  ComposedModel model("Ring");
  auto& sub = model.add_submodel("R");
  std::vector<std::shared_ptr<TokenPlace>> ring;
  for (int i = 0; i < kPlaces; ++i) {
    ring.push_back(sub.add_place<std::int64_t>(
        "p" + std::to_string(i), i == 0 ? kTokens : 0));
  }
  stats::Rng rates(99);
  for (int i = 0; i < kPlaces; ++i) {
    auto from = ring[static_cast<std::size_t>(i)];
    auto to = ring[static_cast<std::size_t>((i + 1) % kPlaces)];
    auto& hop = sub.add_timed_activity(
        "hop" + std::to_string(i),
        stats::make_exponential(0.2 + rates.uniform01()));
    hop.add_input_gate(
        {"has", [from]() { return from->get() > 0; }, nullptr});
    hop.add_output_gate({"move", [from, to](GateContext&) {
                           from->mut() -= 1;
                           to->mut() += 1;
                         }});
  }
  SimulatorConfig config;
  config.end_time = 50000.0;
  config.seed = 31;
  Simulator sim(config);
  sim.set_model(model);
  const auto stats_out = sim.run();
  EXPECT_GT(stats_out.events, 10000u);
  std::int64_t total = 0;
  for (const auto& p : ring) {
    total += p->get();
    EXPECT_GE(p->get(), 0);
  }
  EXPECT_EQ(total, kTokens);
}

TEST(SanStress, DeepInstantaneousChainTerminates) {
  // A countdown of 10000 zero-time firings at a single instant must
  // complete without tripping the livelock guard (set above the depth).
  ComposedModel model("Chain");
  auto& sub = model.add_submodel("C");
  auto countdown = sub.add_place<std::int64_t>("countdown", 10000);
  auto& step = sub.add_instantaneous_activity("step");
  step.add_input_gate(
      {"left", [countdown]() { return countdown->get() > 0; }, nullptr});
  step.add_output_gate(
      {"dec", [countdown](GateContext&) { countdown->mut() -= 1; }});
  SimulatorConfig config;
  config.end_time = 1.0;
  Simulator sim(config);
  sim.set_model(model);
  const auto stats_out = sim.run();
  EXPECT_EQ(countdown->get(), 0);
  EXPECT_EQ(stats_out.events, 10000u);
}

TEST(SanStress, ManyIndependentClocksScaleLinearly) {
  // 100 independent unit clocks for 100 ticks = 10000 events exactly.
  ComposedModel model("Clocks");
  auto& sub = model.add_submodel("C");
  auto count = sub.add_place<std::int64_t>("count", 0);
  for (int i = 0; i < 100; ++i) {
    auto& clock = sub.add_timed_activity("clock" + std::to_string(i),
                                         stats::make_deterministic(1.0));
    clock.add_output_gate(
        {"inc", [count](GateContext&) { count->mut() += 1; }});
  }
  SimulatorConfig config;
  config.end_time = 100.0;
  Simulator sim(config);
  sim.set_model(model);
  const auto stats_out = sim.run();
  EXPECT_EQ(stats_out.events, 10000u);
  EXPECT_EQ(count->get(), 10000);
}

TEST(SanStress, RapidEnableDisableChurnStaysConsistent) {
  // A gate that flips on and off every tick forces constant activation
  // and abortion of a slow activity — it must never fire.
  ComposedModel model("Churn");
  auto& sub = model.add_submodel("C");
  auto phase = sub.add_place<std::int64_t>("phase", 0);
  auto fired = sub.add_place<std::int64_t>("fired", 0);
  auto& flipper = sub.add_timed_activity("flip", stats::make_deterministic(1.0));
  flipper.add_output_gate(
      {"toggle", [phase](GateContext&) { phase->set(1 - phase->get()); }});
  auto& slow = sub.add_timed_activity("slow", stats::make_deterministic(1.5));
  slow.add_input_gate(
      {"odd", [phase]() { return phase->get() == 1; }, nullptr});
  slow.add_output_gate({"mark", [fired](GateContext&) { fired->mut() += 1; }});
  SimulatorConfig config;
  config.end_time = 1000.0;
  Simulator sim(config);
  sim.set_model(model);
  sim.run();
  // Enabled windows last exactly 1 tick < 1.5 delay: never completes.
  EXPECT_EQ(fired->get(), 0);
}

TEST(SanStress, ZeroDelayTimedActivitySelfLimits) {
  // Deterministic(0) timed activities are legal as long as each firing
  // consumes enabling state (the virtualization model's generator
  // pattern); a bounded budget must drain in zero time.
  ComposedModel model("Zero");
  auto& sub = model.add_submodel("Z");
  auto budget = sub.add_place<std::int64_t>("budget", 500);
  auto& burst = sub.add_timed_activity("burst", stats::make_deterministic(0.0));
  burst.add_input_gate(
      {"has", [budget]() { return budget->get() > 0; }, nullptr});
  burst.add_output_gate(
      {"dec", [budget](GateContext&) { budget->mut() -= 1; }});
  SimulatorConfig config;
  config.end_time = 1.0;
  Simulator sim(config);
  sim.set_model(model);
  const auto stats_out = sim.run();
  EXPECT_EQ(budget->get(), 0);
  EXPECT_EQ(stats_out.events, 500u);
}

TEST(SanStress, MixedPriorityFabricDeterministicAcrossRuns) {
  // A medium-size net mixing instantaneous priorities, zero delays and
  // probabilistic cases must replay identically for the same seed.
  const auto run_once_hash = [](std::uint64_t seed) {
    ComposedModel model("Fabric");
    auto& sub = model.add_submodel("F");
    auto a = sub.add_place<std::int64_t>("a", 5);
    auto b = sub.add_place<std::int64_t>("b", 0);
    auto c = sub.add_place<std::int64_t>("c", 0);
    auto& source = sub.add_timed_activity("source", stats::make_exponential(0.8));
    Case left{0.6, {}};
    left.output_gates.push_back({"l", [a](GateContext&) { a->mut() += 1; }});
    Case right{0.4, {}};
    right.output_gates.push_back({"r", [b](GateContext&) { b->mut() += 1; }});
    source.add_case(std::move(left));
    source.add_case(std::move(right));
    auto& drain_a = sub.add_instantaneous_activity("drain_a", 5);
    drain_a.add_input_gate({"g", [a]() { return a->get() >= 3; }, nullptr});
    drain_a.add_output_gate({"o", [a, c](GateContext&) {
                               a->mut() -= 3;
                               c->mut() += 1;
                             }});
    auto& drain_b = sub.add_instantaneous_activity("drain_b", 1);
    drain_b.add_input_gate({"g", [b]() { return b->get() >= 2; }, nullptr});
    drain_b.add_output_gate({"o", [b, c](GateContext&) {
                               b->mut() -= 2;
                               c->mut() += 1;
                             }});
    SimulatorConfig config;
    config.end_time = 5000.0;
    config.seed = seed;
    Simulator sim(config);
    sim.set_model(model);
    const auto stats_out = sim.run();
    return std::tuple(stats_out.events, a->get(), b->get(), c->get());
  };
  EXPECT_EQ(run_once_hash(7), run_once_hash(7));
  EXPECT_NE(std::get<3>(run_once_hash(7)), std::get<3>(run_once_hash(8)));
}

}  // namespace
}  // namespace vcpusim::san
