#include "san/replicate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "san/reward.hpp"
#include "san/simulator.hpp"
#include "stats/distribution.hpp"

namespace vcpusim::san {
namespace {

TEST(Replicate, ValidatesArguments) {
  ComposedModel model("M");
  EXPECT_THROW(replicate(model, "R", 0, [](SanModel&, std::size_t) {}),
               std::invalid_argument);
  EXPECT_THROW(replicate(model, "R", 2, nullptr), std::invalid_argument);
}

TEST(Replicate, CreatesNamedReplicas) {
  ComposedModel model("M");
  std::vector<std::size_t> indices;
  const auto replicas = replicate(model, "Machine", 3,
                                  [&indices](SanModel& sub, std::size_t i) {
                                    indices.push_back(i);
                                    sub.add_place<std::int64_t>("p", 0);
                                  });
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0]->name(), "Machine_1");
  EXPECT_EQ(replicas[2]->name(), "Machine_3");
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(model.find_submodel("Machine_2"), replicas[1]);
}

TEST(Replicate, MachineRepairmanModelMatchesAnalytic) {
  // The classic machine-repairman model as Replicate + shared place:
  // N = 3 machines, each failing at rate lambda = 0.1 while up; a single
  // shared repairman place serializes repairs at rate mu = 1.0.
  // Analytic (birth-death): with rho = lambda/mu,
  //   P(k down) ~ N!/(N-k)! * rho^k; E[#up] = N - E[k].
  constexpr int kMachines = 3;
  constexpr double kLambda = 0.1;
  constexpr double kMu = 1.0;

  ComposedModel model("Shop");
  auto& common = model.add_submodel("Common");
  auto repairman_busy = common.add_place<std::int64_t>("repairman_busy", 0);

  std::vector<std::shared_ptr<TokenPlace>> up_places;
  replicate(model, "Machine", kMachines, [&](SanModel& sub, std::size_t) {
    auto up = sub.add_place<std::int64_t>("up", 1);
    auto in_repair = sub.add_place<std::int64_t>("in_repair", 0);
    up_places.push_back(up);
    sub.join_place("repairman_busy", repairman_busy);

    auto& fail = sub.add_timed_activity("fail", stats::make_exponential(kLambda));
    fail.add_input_gate({"is_up", [up]() { return up->get() == 1; }, nullptr});
    fail.add_output_gate({"down", [up](GateContext&) { up->set(0); }});

    // Seize the (single) repairman.
    auto& seize = sub.add_instantaneous_activity("seize");
    seize.add_input_gate({"down_and_free",
                          [up, in_repair, repairman_busy]() {
                            return up->get() == 0 && in_repair->get() == 0 &&
                                   repairman_busy->get() == 0;
                          },
                          nullptr});
    seize.add_output_gate({"start", [in_repair, repairman_busy](GateContext&) {
                             in_repair->set(1);
                             repairman_busy->set(1);
                           }});

    auto& repair = sub.add_timed_activity("repair", stats::make_exponential(kMu));
    repair.add_input_gate(
        {"repairing", [in_repair]() { return in_repair->get() == 1; }, nullptr});
    repair.add_output_gate({"done",
                            [up, in_repair, repairman_busy](GateContext&) {
                              up->set(1);
                              in_repair->set(0);
                              repairman_busy->set(0);
                            }});
  });

  RewardVariable mean_up(
      "mean_up",
      [up_places]() {
        double up = 0;
        for (const auto& p : up_places) up += static_cast<double>(p->get());
        return up;
      },
      2000.0);

  SimulatorConfig config;
  config.end_time = 300000.0;
  config.seed = 17;
  Simulator sim(config);
  sim.set_model(model);
  sim.add_reward(mean_up);
  sim.run();

  // Analytic stationary distribution of machines down.
  const double rho = kLambda / kMu;
  double weights[kMachines + 1];
  double total = 0;
  for (int k = 0; k <= kMachines; ++k) {
    double w = std::pow(rho, k);
    for (int j = 0; j < k; ++j) w *= (kMachines - j);  // N!/(N-k)!
    weights[k] = w;
    total += w;
  }
  double expected_down = 0;
  for (int k = 0; k <= kMachines; ++k) {
    expected_down += k * weights[k] / total;
  }
  const double expected_up = kMachines - expected_down;

  EXPECT_NEAR(mean_up.time_averaged(300000.0), expected_up, 0.03);
}

}  // namespace
}  // namespace vcpusim::san
