// P-invariant computation tests: conservation laws on hand-built
// models, bound derivation from invariants + initial marking, unbounded
// reporting, and the Farkas row budget.
#include "san/analyze/invariants.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "san/model.hpp"
#include "san/token_view.hpp"
#include "stats/distribution.hpp"

namespace vcpusim::san::analyze {
namespace {

const Invariant* find_invariant(const InvariantAnalysis& analysis,
                                const std::string& symbolic) {
  for (const auto& inv : analysis.invariants) {
    if (inv.symbolic == symbolic) return &inv;
  }
  return nullptr;
}

const TokenBound* find_bound(const InvariantAnalysis& analysis,
                             const std::string& token_name) {
  for (const auto& b : analysis.bounds) {
    if (analysis.incidence.tokens[b.token].name == token_name) return &b;
  }
  return nullptr;
}

/// k tokens circulating A -> B -> A, plus an unbounded completion
/// counter bumped on every Back firing.
struct Ring {
  ComposedModel model{"Ring"};
  std::shared_ptr<TokenPlace> a;
  std::shared_ptr<TokenPlace> b;

  explicit Ring(std::int64_t initial_a) {
    auto& s = model.add_submodel("S");
    a = s.add_place<std::int64_t>("A", initial_a);
    b = s.add_place<std::int64_t>("B", 0);
    auto done = s.add_place<std::int64_t>("Done", 0);
    auto a_local = a;
    auto b_local = b;

    auto& fwd = s.add_timed_activity("Fwd", stats::make_deterministic(1.0));
    fwd.add_input_gate(InputGate{"Fwd_in",
                                 [a_local]() { return a_local->get() > 0; },
                                 nullptr, access({a_local})});
    fwd.add_output_gate(OutputGate{
        "Fwd_out",
        [a_local, b_local](GateContext&) {
          a_local->mut() -= 1;
          b_local->mut() += 1;
        },
        with_effects(access({}, {a_local, b_local}),
                     {{"move", {{a_local, "", -1}, {b_local, "", +1}}}})});

    auto& back = s.add_timed_activity("Back", stats::make_deterministic(1.0));
    back.add_input_gate(InputGate{"Back_in",
                                  [b_local]() { return b_local->get() > 0; },
                                  nullptr, access({b_local})});
    back.add_output_gate(OutputGate{
        "Back_out",
        [a_local, b_local, done](GateContext&) {
          b_local->mut() -= 1;
          a_local->mut() += 1;
          done->mut() += 1;
        },
        with_effects(
            access({}, {a_local, b_local, done}),
            {{"move",
              {{b_local, "", -1}, {a_local, "", +1}, {done, "", +1}}}})});
  }
};

TEST(Invariants, RingConservationAndBounds) {
  Ring ring(3);
  const auto analysis = analyze_invariants(ring.model);
  ASSERT_TRUE(analysis.incidence.complete);
  EXPECT_FALSE(analysis.budget_exhausted);

  const auto* conservation = find_invariant(analysis, "S->A + S->B = 3");
  ASSERT_NE(conservation, nullptr);
  EXPECT_EQ(conservation->initial_value, 3);

  const auto* bound_a = find_bound(analysis, "S->A");
  const auto* bound_b = find_bound(analysis, "S->B");
  ASSERT_NE(bound_a, nullptr);
  ASSERT_NE(bound_b, nullptr);
  EXPECT_EQ(bound_a->bound, 3);
  EXPECT_EQ(bound_b->bound, 3);

  // The completion counter has no conservation law: reported unbounded.
  EXPECT_EQ(find_bound(analysis, "S->Done"), nullptr);
  ASSERT_EQ(analysis.unbounded.size(), 1u);
  EXPECT_EQ(analysis.incidence.tokens[analysis.unbounded[0]].name, "S->Done");
}

TEST(Invariants, EvaluateTracksLiveMarking) {
  Ring ring(2);
  const auto analysis = analyze_invariants(ring.model);
  const auto* conservation = find_invariant(analysis, "S->A + S->B = 2");
  ASSERT_NE(conservation, nullptr);
  const std::size_t index =
      static_cast<std::size_t>(conservation - analysis.invariants.data());
  EXPECT_EQ(analysis.evaluate(index), 2);

  // Perturb the marking: the weighted sum follows the live values.
  ring.a->set(7);
  EXPECT_EQ(analysis.evaluate(index), 7);
  ring.model.reset_marking();
}

TEST(Invariants, WeightedConservation) {
  // Split: one X becomes two Y; 2*X + Y is conserved.
  ComposedModel model("Split");
  auto& s = model.add_submodel("S");
  auto x = s.add_place<std::int64_t>("X", 4);
  auto y = s.add_place<std::int64_t>("Y", 0);
  auto& act = s.add_timed_activity("Split", stats::make_deterministic(1.0));
  act.add_input_gate(InputGate{"In", [x]() { return x->get() > 0; }, nullptr,
                               access({x})});
  act.add_output_gate(OutputGate{
      "Out",
      [x, y](GateContext&) {
        x->mut() -= 1;
        y->mut() += 2;
      },
      with_effects(access({}, {x, y}),
                   {{"split", {{x, "", -1}, {y, "", +2}}}})});

  const auto analysis = analyze_invariants(model);
  const auto* weighted = find_invariant(analysis, "2*S->X + S->Y = 8");
  ASSERT_NE(weighted, nullptr);
  const auto* bound_x = find_bound(analysis, "S->X");
  const auto* bound_y = find_bound(analysis, "S->Y");
  ASSERT_NE(bound_x, nullptr);
  ASSERT_NE(bound_y, nullptr);
  EXPECT_EQ(bound_x->bound, 4);  // floor(8 / 2)
  EXPECT_EQ(bound_y->bound, 8);
}

TEST(Invariants, ComplementPairProvesFlagBound) {
  ComposedModel model("Flag");
  auto& s = model.add_submodel("S");
  auto flag = s.add_place<std::int64_t>("Flag", 0);
  model.record_token_view(flag_view(flag));
  auto& act = s.add_timed_activity("Toggle", stats::make_deterministic(1.0));
  act.add_output_gate(OutputGate{
      "Out", [flag](GateContext&) { flag->set(1 - flag->get()); },
      with_effects(access({flag}, {flag}),
                   {{"raise", {{flag, "set", +1}, {flag, "clear", -1}}},
                    {"lower", {{flag, "set", -1}, {flag, "clear", +1}}}})});

  const auto analysis = analyze_invariants(model);
  const auto* pair =
      find_invariant(analysis, "S->Flag.set + S->Flag.clear = 1");
  ASSERT_NE(pair, nullptr);
  const auto* bound = find_bound(analysis, "S->Flag.set");
  ASSERT_NE(bound, nullptr);
  EXPECT_EQ(bound->bound, 1);
  EXPECT_TRUE(analysis.unbounded.empty());
}

TEST(Invariants, RowBudgetExhaustionReportsAndReturnsNothing) {
  Ring ring(1);
  InvariantOptions options;
  options.max_rows = 1;  // guaranteed too small: 3 tokens seed 3 rows
  const auto analysis = analyze_invariants(ring.model, options);
  EXPECT_TRUE(analysis.budget_exhausted);
  EXPECT_TRUE(analysis.invariants.empty());
  EXPECT_TRUE(analysis.bounds.empty());
}

TEST(Invariants, IncompleteIncidenceYieldsNoInvariants) {
  ComposedModel model("Partial");
  auto& s = model.add_submodel("S");
  auto x = s.add_place<std::int64_t>("X", 1);
  auto& act = s.add_timed_activity("Mystery", stats::make_deterministic(1.0));
  act.add_output_gate(
      OutputGate{"Out", [x](GateContext&) { x->mut() += 1; }, GateAccess{}});

  const auto analysis = analyze_invariants(model);
  EXPECT_FALSE(analysis.incidence.complete);
  EXPECT_TRUE(analysis.invariants.empty());
}

}  // namespace
}  // namespace vcpusim::san::analyze
