#include "san/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stats/distribution.hpp"

namespace vcpusim::san {
namespace {

/// Records every completion for trajectory assertions.
class Recorder final : public TraceObserver {
 public:
  struct Entry {
    Time time;
    std::string activity;
    std::size_t case_index;
  };
  void on_fire(Time now, const Activity& activity,
               std::size_t case_index) override {
    entries.push_back({now, activity.name(), case_index});
  }
  std::vector<Entry> entries;
};

SimulatorConfig config_for(Time end, std::uint64_t seed = 1) {
  SimulatorConfig c;
  c.end_time = end;
  c.seed = seed;
  return c;
}

TEST(Simulator, RequiresModel) {
  Simulator sim(config_for(10));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, RejectsNonPositiveEndTime) {
  SimulatorConfig c;
  c.end_time = 0;
  EXPECT_THROW(Simulator{c}, std::invalid_argument);
}

TEST(Simulator, SettingModelAgainSwapsTheModel) {
  // A simulator can be re-pointed at another model: the second model
  // runs from its own initial marking and the first stays untouched
  // after the swap (the pool's rebind path relies on this).
  auto make_counter_model = [](const std::string& name,
                               std::shared_ptr<TokenPlace>& counter) {
    auto model = std::make_unique<ComposedModel>(name);
    auto& sub = model->add_submodel("S");
    counter = sub.add_place<std::int64_t>("count", 0);
    auto c = counter;
    auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(1.0));
    clock.add_output_gate({"inc", [c](GateContext&) { c->mut() += 1; }});
    return model;
  };
  std::shared_ptr<TokenPlace> first_counter;
  std::shared_ptr<TokenPlace> second_counter;
  const auto first = make_counter_model("A", first_counter);
  const auto second = make_counter_model("B", second_counter);

  Simulator sim(config_for(10.0));
  sim.set_model(*first);
  EXPECT_EQ(sim.run().events, 10u);
  EXPECT_EQ(first_counter->get(), 10);

  sim.set_model(*second);
  EXPECT_EQ(sim.run().events, 10u);
  EXPECT_EQ(second_counter->get(), 10);
  EXPECT_EQ(first_counter->get(), 10) << "swap must not touch the old model";
}

TEST(Simulator, DeterministicClockFiresEveryUnit) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto counter = sub.add_place<std::int64_t>("count", 0);
  auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(1.0));
  clock.add_output_gate(
      {"inc", [counter](GateContext&) { counter->mut() += 1; }});

  Simulator sim(config_for(10.0));
  sim.set_model(cm);
  const auto stats = sim.run();
  EXPECT_EQ(counter->get(), 10);  // fires at t=1..10
  EXPECT_EQ(stats.events, 10u);
  EXPECT_EQ(stats.end_time, 10.0);
}

TEST(Simulator, TokenFlowProducerConsumer) {
  // Producer adds a token every 2 time units; consumer (period 1) removes
  // one whenever available. At the end the buffer must be nearly empty.
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto buffer = sub.add_place<std::int64_t>("buffer", 0);
  auto produced = sub.add_place<std::int64_t>("produced", 0);
  auto consumed = sub.add_place<std::int64_t>("consumed", 0);

  auto& producer =
      sub.add_timed_activity("produce", stats::make_deterministic(2.0));
  producer.add_output_gate({"p", [buffer, produced](GateContext&) {
                              buffer->mut() += 1;
                              produced->mut() += 1;
                            }});
  auto& consumer =
      sub.add_timed_activity("consume", stats::make_deterministic(1.0));
  consumer.add_input_gate(
      {"nonempty", [buffer]() { return buffer->get() > 0; }, nullptr});
  consumer.add_output_gate({"c", [buffer, consumed](GateContext&) {
                              buffer->mut() -= 1;
                              consumed->mut() += 1;
                            }});

  Simulator sim(config_for(100.0));
  sim.set_model(cm);
  sim.run();
  EXPECT_EQ(produced->get(), 50);
  EXPECT_EQ(produced->get() - consumed->get(), buffer->get());
  EXPECT_LE(buffer->get(), 1);
  EXPECT_GE(consumed->get(), 49);
}

TEST(Simulator, InstantaneousFiresBeforeTimeAdvances) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto trigger = sub.add_place<std::int64_t>("trigger", 0);
  auto fired_at = sub.add_place<std::int64_t>("fired_at", -1);

  auto& timed = sub.add_timed_activity("timed", stats::make_deterministic(3.0));
  timed.add_output_gate(
      {"set", [trigger](GateContext&) { trigger->set(1); }});

  auto& inst = sub.add_instantaneous_activity("inst");
  inst.add_input_gate(
      {"armed", [trigger]() { return trigger->get() > 0; }, nullptr});
  inst.add_output_gate({"react", [trigger, fired_at](GateContext& ctx) {
                          trigger->set(0);
                          fired_at->set(static_cast<std::int64_t>(ctx.now));
                        }});

  Simulator sim(config_for(3.5));
  sim.set_model(cm);
  Recorder rec;
  sim.add_observer(rec);
  sim.run();
  EXPECT_EQ(fired_at->get(), 3);  // same instant as the timed firing
  ASSERT_EQ(rec.entries.size(), 2u);
  EXPECT_EQ(rec.entries[0].activity, "S->timed");
  EXPECT_EQ(rec.entries[1].activity, "S->inst");
  EXPECT_EQ(rec.entries[0].time, rec.entries[1].time);
}

TEST(Simulator, InstantaneousEnabledAtTimeZeroFiresBeforeAnything) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto tokens = sub.add_place<std::int64_t>("tokens", 3);
  auto& inst = sub.add_instantaneous_activity("drain");
  inst.add_input_gate(
      {"nonempty", [tokens]() { return tokens->get() > 0; }, nullptr});
  inst.add_output_gate(
      {"dec", [tokens](GateContext&) { tokens->mut() -= 1; }});

  Simulator sim(config_for(1.0));
  sim.set_model(cm);
  const auto stats = sim.run();
  EXPECT_EQ(tokens->get(), 0);
  EXPECT_EQ(stats.events, 3u);  // all at t=0
}

TEST(Simulator, InstantaneousPriorityOrdering) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto gate_open = sub.add_place<std::int64_t>("gate_open", 1);
  auto order = std::make_shared<std::vector<std::string>>();

  auto& low = sub.add_instantaneous_activity("low", 1);
  low.add_input_gate(
      {"open", [gate_open]() { return gate_open->get() == 1; }, nullptr});
  low.add_output_gate({"l", [gate_open, order](GateContext&) {
                         gate_open->set(2);
                         order->push_back("low");
                       }});
  auto& high = sub.add_instantaneous_activity("high", 5);
  high.add_input_gate(
      {"open", [gate_open]() { return gate_open->get() >= 1; }, nullptr});
  high.add_output_gate({"h", [gate_open, order](GateContext&) {
                          gate_open->mut() -= (gate_open->get() == 2 ? 2 : 1);
                          order->push_back("high");
                        }});

  // high (priority 5) must fire before low even though both are enabled.
  Simulator sim(config_for(1.0));
  sim.set_model(cm);
  sim.run();
  ASSERT_FALSE(order->empty());
  EXPECT_EQ(order->front(), "high");
}

TEST(Simulator, InstantaneousLivelockDetected) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto& inst = sub.add_instantaneous_activity("spin");
  // Always enabled, never changes the marking: zero-time livelock.
  inst.add_output_gate({"noop", [](GateContext&) {}});

  SimulatorConfig c = config_for(1.0);
  c.max_instantaneous_chain = 100;
  Simulator sim(c);
  sim.set_model(cm);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, DisabledActivationIsAborted) {
  // A slow activity is disabled by a faster one before completing: the
  // slow activity must never fire (race/abort semantics).
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto armed = sub.add_place<std::int64_t>("armed", 1);
  auto slow_fired = sub.add_place<std::int64_t>("slow_fired", 0);

  auto& fast = sub.add_timed_activity("fast", stats::make_deterministic(1.0));
  fast.add_input_gate(
      {"armed", [armed]() { return armed->get() == 1; }, nullptr});
  fast.add_output_gate({"disarm", [armed](GateContext&) { armed->set(0); }});

  auto& slow = sub.add_timed_activity("slow", stats::make_deterministic(5.0));
  slow.add_input_gate(
      {"armed", [armed]() { return armed->get() == 1; }, nullptr});
  slow.add_output_gate(
      {"mark", [slow_fired](GateContext&) { slow_fired->set(1); }});

  Simulator sim(config_for(20.0));
  sim.set_model(cm);
  sim.run();
  EXPECT_EQ(slow_fired->get(), 0);
}

TEST(Simulator, ReEnabledActivitySamplesFreshDelay) {
  // enable -> disable -> re-enable: the activity fires relative to its
  // re-activation, not its first activation.
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto phase = sub.add_place<std::int64_t>("phase", 1);
  auto fired_at = sub.add_place<std::int64_t>("fired_at", -1);

  // Phase driver: disables "watched" during [1, 2).
  auto& driver = sub.add_timed_activity("driver", stats::make_deterministic(1.0));
  driver.add_output_gate({"advance", [phase](GateContext&) {
                            phase->mut() += 1;  // 1->2 at t=1, 2->3 at t=2, ...
                          }});

  auto& watched =
      sub.add_timed_activity("watched", stats::make_deterministic(1.5));
  watched.add_input_gate(
      {"enabled_phase", [phase]() { return phase->get() != 2; }, nullptr});
  watched.add_output_gate({"mark", [fired_at, phase](GateContext& ctx) {
                             if (fired_at->get() < 0) {
                               fired_at->set(static_cast<std::int64_t>(
                                   ctx.now * 10));  // tenths of a tick
                             }
                           }});

  // Timeline: activated at t=0 (due t=1.5), disabled at t=1 (phase 2),
  // re-enabled at t=2 (phase 3) -> fires at t=3.5, not 1.5 or 2.5.
  Simulator sim(config_for(10.0));
  sim.set_model(cm);
  sim.run();
  EXPECT_EQ(fired_at->get(), 35);
}

TEST(Simulator, SameTimePriorityOrderingOfTimedActivities) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto order = std::make_shared<std::vector<std::string>>();
  auto once = sub.add_place<std::int64_t>("once", 1);

  auto& lo = sub.add_timed_activity("lo", stats::make_deterministic(1.0), 0);
  lo.add_input_gate({"g", [once]() { return once->get() == 1; }, nullptr});
  lo.add_output_gate({"o", [order](GateContext&) { order->push_back("lo"); }});
  auto& hi = sub.add_timed_activity("hi", stats::make_deterministic(1.0), 10);
  hi.add_input_gate({"g", [once]() { return once->get() == 1; }, nullptr});
  hi.add_output_gate({"o", [order, once](GateContext&) {
                        order->push_back("hi");
                      }});

  Simulator sim(config_for(1.0));
  sim.set_model(cm);
  sim.run();
  ASSERT_EQ(order->size(), 2u);
  EXPECT_EQ((*order)[0], "hi");
  EXPECT_EQ((*order)[1], "lo");
}

TEST(Simulator, SameSeedSameTrajectory) {
  const auto build = [](ComposedModel& cm,
                        std::shared_ptr<TokenPlace>& queue_out) {
    auto& sub = cm.add_submodel("S");
    auto queue = sub.add_place<std::int64_t>("queue", 0);
    auto& arrive =
        sub.add_timed_activity("arrive", stats::make_exponential(0.7));
    arrive.add_output_gate(
        {"a", [queue](GateContext&) { queue->mut() += 1; }});
    auto& serve = sub.add_timed_activity("serve", stats::make_exponential(1.0));
    serve.add_input_gate(
        {"busy", [queue]() { return queue->get() > 0; }, nullptr});
    serve.add_output_gate({"s", [queue](GateContext&) { queue->mut() -= 1; }});
    queue_out = queue;
  };

  std::vector<Recorder::Entry> first;
  for (int run = 0; run < 2; ++run) {
    ComposedModel cm("M");
    std::shared_ptr<TokenPlace> queue;
    build(cm, queue);
    Simulator sim(config_for(200.0, 42));
    sim.set_model(cm);
    Recorder rec;
    sim.add_observer(rec);
    sim.run();
    if (run == 0) {
      first = rec.entries;
    } else {
      ASSERT_EQ(first.size(), rec.entries.size());
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].time, rec.entries[i].time);
        EXPECT_EQ(first[i].activity, rec.entries[i].activity);
      }
    }
  }
}

TEST(Simulator, DifferentSeedsDifferentTrajectories) {
  const auto run_once_count = [](std::uint64_t seed) {
    ComposedModel cm("M");
    auto& sub = cm.add_submodel("S");
    auto count = sub.add_place<std::int64_t>("count", 0);
    auto& a = sub.add_timed_activity("a", stats::make_exponential(1.0));
    a.add_output_gate({"o", [count](GateContext&) { count->mut() += 1; }});
    Simulator sim(config_for(500.0, seed));
    sim.set_model(cm);
    sim.run();
    return count->get();
  };
  EXPECT_NE(run_once_count(1), run_once_count(2));
}

TEST(Simulator, EventCapStopsRun) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(1.0));
  clock.add_output_gate({"noop", [](GateContext&) {}});
  SimulatorConfig c = config_for(1e9);
  c.max_events = 100;
  Simulator sim(c);
  sim.set_model(cm);
  const auto stats = sim.run();
  EXPECT_TRUE(stats.hit_event_cap);
  EXPECT_EQ(stats.events, 100u);
}

TEST(Simulator, MM1QueueMatchesAnalyticMeanLength) {
  // M/M/1, lambda=0.5, mu=1.0: E[N] = rho/(1-rho) = 1.0.
  ComposedModel cm("MM1");
  auto& sub = cm.add_submodel("Q");
  auto queue = sub.add_place<std::int64_t>("queue", 0);
  auto& arrive = sub.add_timed_activity("arrive", stats::make_exponential(0.5));
  arrive.add_output_gate({"a", [queue](GateContext&) { queue->mut() += 1; }});
  auto& serve = sub.add_timed_activity("serve", stats::make_exponential(1.0));
  serve.add_input_gate(
      {"busy", [queue]() { return queue->get() > 0; }, nullptr});
  serve.add_output_gate({"s", [queue](GateContext&) { queue->mut() -= 1; }});

  RewardVariable mean_n(
      "queue_len", [queue]() { return static_cast<double>(queue->get()); },
      1000.0);

  Simulator sim(config_for(120000.0, 7));
  sim.set_model(cm);
  sim.add_reward(mean_n);
  sim.run();
  EXPECT_NEAR(mean_n.time_averaged(120000.0), 1.0, 0.08);
}

TEST(Simulator, MM1UtilizationMatchesRho) {
  ComposedModel cm("MM1");
  auto& sub = cm.add_submodel("Q");
  auto queue = sub.add_place<std::int64_t>("queue", 0);
  auto& arrive = sub.add_timed_activity("arrive", stats::make_exponential(0.3));
  arrive.add_output_gate({"a", [queue](GateContext&) { queue->mut() += 1; }});
  auto& serve = sub.add_timed_activity("serve", stats::make_exponential(1.0));
  serve.add_input_gate(
      {"busy", [queue]() { return queue->get() > 0; }, nullptr});
  serve.add_output_gate({"s", [queue](GateContext&) { queue->mut() -= 1; }});

  RewardVariable busy("busy", [queue]() { return queue->get() > 0 ? 1.0 : 0.0; },
                      1000.0);
  Simulator sim(config_for(100000.0, 11));
  sim.set_model(cm);
  sim.add_reward(busy);
  sim.run();
  EXPECT_NEAR(busy.time_averaged(100000.0), 0.3, 0.02);
}

TEST(Simulator, ProbabilisticCasesViaSimulator) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto heads = sub.add_place<std::int64_t>("heads", 0);
  auto tails = sub.add_place<std::int64_t>("tails", 0);
  auto& flip = sub.add_timed_activity("flip", stats::make_deterministic(1.0));
  Case h{0.7, {}};
  h.output_gates.push_back({"h", [heads](GateContext&) { heads->mut() += 1; }});
  Case t{0.3, {}};
  t.output_gates.push_back({"t", [tails](GateContext&) { tails->mut() += 1; }});
  flip.add_case(std::move(h));
  flip.add_case(std::move(t));

  Simulator sim(config_for(20000.0, 13));
  sim.set_model(cm);
  sim.run();
  const double total = static_cast<double>(heads->get() + tails->get());
  EXPECT_EQ(total, 20000.0);
  EXPECT_NEAR(heads->get() / total, 0.7, 0.02);
}

// ---------------------------------------------------------------------
// Footprint-driven incremental enabling: for any mix of declared and
// undeclared gate footprints, incremental settle must reproduce the
// full-scan trajectory bit for bit (same RNG consumption order).
// ---------------------------------------------------------------------

enum class Footprints { kNone, kPartial, kAll };

struct TandemOutcome {
  std::vector<Recorder::Entry> entries;
  std::int64_t done = 0;
  std::uint64_t events = 0;
  std::uint64_t enabling_evals = 0;
};

/// Tandem queue with an instantaneous overflow drain — couples several
/// activities through shared places so incremental marking has real
/// propagation to get right.
TandemOutcome run_tandem(Footprints footprints, bool incremental,
                         std::uint64_t seed) {
  const bool declare_most = footprints != Footprints::kNone;
  const bool declare_all = footprints == Footprints::kAll;
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto q1 = sub.add_place<std::int64_t>("q1", 0);
  auto q2 = sub.add_place<std::int64_t>("q2", 0);
  auto done = sub.add_place<std::int64_t>("done", 0);

  auto& arrive = sub.add_timed_activity("arrive", stats::make_exponential(0.9));
  arrive.add_output_gate({"a", [q1](GateContext&) { q1->mut() += 1; },
                          declare_most ? access({}, {q1}) : GateAccess{}});

  auto& stage1 = sub.add_timed_activity("stage1", stats::make_exponential(1.1));
  stage1.add_input_gate({"g1", [q1]() { return q1->get() > 0; }, nullptr,
                         declare_most ? access({q1}) : GateAccess{}});
  stage1.add_output_gate({"o1",
                          [q1, q2](GateContext&) {
                            q1->mut() -= 1;
                            q2->mut() += 1;
                          },
                          declare_most ? access({}, {q1, q2}) : GateAccess{}});

  // In kPartial mode this activity's gates stay opaque: completing it
  // must fall back to a full rescan while the rest uses the index.
  auto& stage2 = sub.add_timed_activity("stage2", stats::make_exponential(1.3));
  stage2.add_input_gate({"g2", [q2]() { return q2->get() > 0; }, nullptr,
                         declare_all ? access({q2}) : GateAccess{}});
  stage2.add_output_gate({"o2",
                          [q2, done](GateContext&) {
                            q2->mut() -= 1;
                            done->mut() += 1;
                          },
                          declare_all ? access({}, {q2, done}) : GateAccess{}});

  auto& drain = sub.add_instantaneous_activity("drain");
  drain.add_input_gate({"gd", [q2]() { return q2->get() > 3; }, nullptr,
                        declare_most ? access({q2}) : GateAccess{}});
  drain.add_output_gate({"od",
                         [q2, done](GateContext&) {
                           q2->mut() -= 1;
                           done->mut() += 1;
                         },
                         declare_most ? access({}, {q2, done}) : GateAccess{}});

  SimulatorConfig config = config_for(400.0, seed);
  config.incremental_enabling = incremental;
  Simulator sim(config);
  sim.set_model(cm);
  Recorder rec;
  sim.add_observer(rec);
  const auto stats = sim.run();
  return {std::move(rec.entries), done->get(), stats.events,
          stats.enabling_evals};
}

TEST(SimulatorIncremental, MatchesFullScanTrajectoryForEveryFootprintMix) {
  for (const auto footprints :
       {Footprints::kNone, Footprints::kPartial, Footprints::kAll}) {
    for (const std::uint64_t seed : {1u, 42u, 9001u}) {
      const auto full = run_tandem(footprints, false, seed);
      const auto incremental = run_tandem(footprints, true, seed);
      SCOPED_TRACE("footprints=" + std::to_string(static_cast<int>(footprints)) +
                   " seed=" + std::to_string(seed));
      EXPECT_EQ(full.events, incremental.events);
      EXPECT_EQ(full.done, incremental.done);
      ASSERT_EQ(full.entries.size(), incremental.entries.size());
      for (std::size_t i = 0; i < full.entries.size(); ++i) {
        EXPECT_EQ(full.entries[i].time, incremental.entries[i].time) << i;
        EXPECT_EQ(full.entries[i].activity, incremental.entries[i].activity)
            << i;
        EXPECT_EQ(full.entries[i].case_index, incremental.entries[i].case_index)
            << i;
      }
    }
  }
}

TEST(SimulatorIncremental, FreeRunningClockKeepsFiringWithDeclaredWrites) {
  // A clock with no input gates reads nothing, so no marking change ever
  // marks it dirty — completing it must still re-activate it.
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto count = sub.add_place<std::int64_t>("count", 0);
  auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(1.0));
  clock.add_output_gate({"inc", [count](GateContext&) { count->mut() += 1; },
                         access({}, {count})});
  SimulatorConfig config = config_for(10.0);
  config.incremental_enabling = true;
  Simulator sim(config);
  sim.set_model(cm);
  const auto stats = sim.run();
  EXPECT_EQ(count->get(), 10);
  EXPECT_EQ(stats.events, 10u);
}

TEST(SimulatorIncremental, DisabledByConfigUsesFullScan) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto count = sub.add_place<std::int64_t>("count", 0);
  auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(2.0));
  clock.add_output_gate({"inc", [count](GateContext&) { count->mut() += 1; },
                         access({}, {count})});
  SimulatorConfig config = config_for(10.0);
  config.incremental_enabling = false;
  Simulator sim(config);
  sim.set_model(cm);
  sim.run();
  EXPECT_EQ(count->get(), 5);
}

TEST(SimulatorIncremental, FullFootprintsCutEnablingEvaluations) {
  const auto full = run_tandem(Footprints::kAll, false, 7);
  const auto incremental = run_tandem(Footprints::kAll, true, 7);
  ASSERT_EQ(full.events, incremental.events);
  ASSERT_GT(incremental.enabling_evals, 0u);
  // Only four activities, so the index's edge over a full scan is
  // modest here — still, it must beat the scan by a clear margin
  // (at least 1.5x fewer predicate checks).
  EXPECT_LT(incremental.enabling_evals * 3, full.enabling_evals * 2)
      << "incremental=" << incremental.enabling_evals
      << " full=" << full.enabling_evals;
}

TEST(SimulatorIncremental, DynamicWritesDirtyOnlyTouchedPlaces) {
  // A clock increments `count` on every firing but reports the write via
  // GateContext::touch() only on even firings. The watcher (declared
  // read {count}) must not be re-evaluated after the unreported write —
  // dynamic footprints are trusted, not checked — so its activation slips
  // from t=1 (static declaration) to t=2 (dynamic, first touch).
  const auto first_watch_fire = [](bool dynamic) {
    ComposedModel cm("M");
    auto& sub = cm.add_submodel("S");
    auto count = sub.add_place<std::int64_t>("count", 0);
    auto fired = std::make_shared<int>(0);
    auto& clock =
        sub.add_timed_activity("clock", stats::make_deterministic(1.0));
    clock.add_output_gate(
        {"inc",
         [count, fired](GateContext& ctx) {
           count->mut() += 1;
           if (++*fired % 2 == 0) ctx.touch(count.get());
         },
         dynamic ? access_dynamic({}, {count}) : access({}, {count})});
    auto& watch =
        sub.add_timed_activity("watch", stats::make_deterministic(0.5));
    watch.add_input_gate({"armed", [count]() { return count->get() >= 1; },
                          nullptr, access({count})});
    watch.add_output_gate({"noop", [](GateContext&) {}, access({}, {})});

    SimulatorConfig config = config_for(10.0);
    config.incremental_enabling = true;
    Simulator sim(config);
    sim.set_model(cm);
    Recorder rec;
    sim.add_observer(rec);
    sim.run();
    for (const auto& e : rec.entries) {
      if (e.activity == "S->watch") return e.time;
    }
    return -1.0;
  };
  EXPECT_EQ(first_watch_fire(false), 1.5);
  EXPECT_EQ(first_watch_fire(true), 2.5);
}

TEST(Simulator, RunResetsMarkingAndRewards) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto count = sub.add_place<std::int64_t>("count", 0);
  auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(1.0));
  clock.add_output_gate({"inc", [count](GateContext&) { count->mut() += 1; }});

  RewardVariable reward("count", [count]() { return 1.0; });
  Simulator sim(config_for(10.0));
  sim.set_model(cm);
  sim.add_reward(reward);
  sim.run();
  const auto after_first = count->get();
  const auto reward_first = reward.accumulated();
  sim.run();  // second replication re-resets
  EXPECT_EQ(count->get(), after_first);
  EXPECT_EQ(reward.accumulated(), reward_first);
}

TEST(Simulator, ResetWithSeedReplaysFreshSimulator) {
  // A reused simulator driven via reset(seed) + advance_until must replay
  // exactly the trajectory a fresh Simulator built with that seed runs —
  // the invariant the zero-rebuild replication pool stands on.
  const auto build = [](ComposedModel& cm) {
    auto& sub = cm.add_submodel("S");
    auto queue = sub.add_place<std::int64_t>("queue", 0);
    auto& arrive =
        sub.add_timed_activity("arrive", stats::make_exponential(0.7));
    arrive.add_output_gate({"a", [queue](GateContext&) { queue->mut() += 1; }});
    auto& serve = sub.add_timed_activity("serve", stats::make_exponential(1.0));
    serve.add_input_gate(
        {"busy", [queue]() { return queue->get() > 0; }, nullptr});
    serve.add_output_gate({"s", [queue](GateContext&) { queue->mut() -= 1; }});
  };

  // Fresh-simulator reference trajectories for two seeds.
  const auto fresh = [&](std::uint64_t seed) {
    ComposedModel cm("M");
    build(cm);
    Simulator sim(config_for(150.0, seed));
    sim.set_model(cm);
    Recorder rec;
    sim.add_observer(rec);
    const auto stats = sim.run();
    return std::pair{rec.entries, stats};
  };
  const auto [first_ref, first_stats] = fresh(42);
  const auto [second_ref, second_stats] = fresh(7);
  ASSERT_FALSE(first_ref.empty());
  ASSERT_FALSE(second_ref.empty());
  ASSERT_NE(first_ref[0].time, second_ref[0].time);  // seeds actually differ

  // One simulator, reused across both seeds, in reverse order and with a
  // warm-up run in between to perturb internal state.
  ComposedModel cm("M");
  build(cm);
  Simulator sim(config_for(150.0, 1234));
  sim.set_model(cm);
  Recorder rec;
  sim.add_observer(rec);

  const auto replay = [&](std::uint64_t seed) {
    rec.entries.clear();
    sim.reset(seed);
    return sim.advance_until(150.0);
  };
  const auto check = [&](const std::vector<Recorder::Entry>& ref,
                         const RunStats& ref_stats, const RunStats& got) {
    EXPECT_EQ(got.events, ref_stats.events);
    EXPECT_EQ(got.enabling_evals, ref_stats.enabling_evals);
    ASSERT_EQ(rec.entries.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(rec.entries[i].time, ref[i].time) << i;
      EXPECT_EQ(rec.entries[i].activity, ref[i].activity) << i;
    }
  };
  check(second_ref, second_stats, replay(7));
  replay(999);  // unrelated replication in between
  check(first_ref, first_stats, replay(42));
  check(first_ref, first_stats, replay(42));  // and again, back to back
}

TEST(Simulator, ClearRewardsDropsRegisteredVariables) {
  ComposedModel cm("M");
  auto& sub = cm.add_submodel("S");
  auto count = sub.add_place<std::int64_t>("count", 0);
  auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(1.0));
  clock.add_output_gate({"inc", [count](GateContext&) { count->mut() += 1; }});

  RewardVariable stale("stale", []() { return 1.0; });
  Simulator sim(config_for(10.0));
  sim.set_model(cm);
  sim.add_reward(stale);
  sim.run();
  const auto accumulated = stale.accumulated();
  EXPECT_GT(accumulated, 0.0);

  sim.clear_rewards();
  sim.run();  // the dropped variable must no longer be reset or accrued
  EXPECT_EQ(stale.accumulated(), accumulated);
}

}  // namespace
}  // namespace vcpusim::san
