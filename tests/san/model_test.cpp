#include "san/model.hpp"

#include <gtest/gtest.h>

#include "stats/distribution.hpp"

namespace vcpusim::san {
namespace {

TEST(SanModel, AddPlaceQualifiesGlobalName) {
  SanModel m("M");
  auto p = m.add_place<std::int64_t>("tokens", 1);
  EXPECT_EQ(p->name(), "M->tokens");
  EXPECT_EQ(m.local_place_names().front(), "tokens");
}

TEST(SanModel, FindPlaceByLocalName) {
  SanModel m("M");
  auto p = m.add_place<std::int64_t>("tokens", 1);
  EXPECT_EQ(m.find_place("tokens"), p);
  EXPECT_EQ(m.find_place("missing"), nullptr);
}

TEST(SanModel, JoinPlaceSharesState) {
  SanModel a("A"), b("B");
  auto p = a.add_place<std::int64_t>("shared", 0);
  b.join_place("local_alias", p);
  p->set(9);
  auto found = std::static_pointer_cast<TokenPlace>(b.find_place("local_alias"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->get(), 9);
}

TEST(SanModel, JoinNullPlaceThrows) {
  SanModel m("M");
  EXPECT_THROW(m.join_place("x", nullptr), std::invalid_argument);
}

TEST(SanModel, ActivityNamesQualified) {
  SanModel m("M");
  auto& a = m.add_timed_activity("act", stats::make_deterministic(1.0));
  EXPECT_EQ(a.name(), "M->act");
  auto& i = m.add_instantaneous_activity("inst");
  EXPECT_EQ(i.name(), "M->inst");
  EXPECT_EQ(m.activities().size(), 2u);
}

TEST(SanModel, ResetMarkingRestoresAllPlaces) {
  SanModel m("M");
  auto p1 = m.add_place<std::int64_t>("a", 1);
  auto p2 = m.add_place<std::int64_t>("b", 2);
  p1->set(10);
  p2->set(20);
  m.reset_marking();
  EXPECT_EQ(p1->get(), 1);
  EXPECT_EQ(p2->get(), 2);
}

TEST(ComposedModel, OwnsSubmodels) {
  ComposedModel cm("System");
  auto& a = cm.add_submodel("A");
  auto& b = cm.add_submodel("B");
  EXPECT_EQ(cm.submodels().size(), 2u);
  EXPECT_EQ(cm.find_submodel("A"), &a);
  EXPECT_EQ(cm.find_submodel("B"), &b);
  EXPECT_EQ(cm.find_submodel("C"), nullptr);
}

TEST(ComposedModel, AllActivitiesAggregates) {
  ComposedModel cm("System");
  auto& a = cm.add_submodel("A");
  auto& b = cm.add_submodel("B");
  a.add_timed_activity("x", stats::make_deterministic(1.0));
  b.add_timed_activity("y", stats::make_deterministic(1.0));
  b.add_instantaneous_activity("z");
  EXPECT_EQ(cm.all_activities().size(), 3u);
}

TEST(ComposedModel, ResetMarkingCascades) {
  ComposedModel cm("System");
  auto& a = cm.add_submodel("A");
  auto p = a.add_place<std::int64_t>("tokens", 5);
  p->set(0);
  cm.reset_marking();
  EXPECT_EQ(p->get(), 5);
}

TEST(ComposedModel, SharedPlaceResetIsIdempotent) {
  ComposedModel cm("System");
  auto& a = cm.add_submodel("A");
  auto& b = cm.add_submodel("B");
  auto p = a.add_place<std::int64_t>("shared", 3);
  b.join_place("shared", p);
  p->set(42);
  cm.reset_marking();  // resets p twice, via A and via B
  EXPECT_EQ(p->get(), 3);
}

TEST(ComposedModel, JoinRegistryRendersTableFormat) {
  ComposedModel cm("VM_2VCPU");
  auto& a = cm.add_submodel("Workload_Generator");
  auto p = a.add_place<std::int64_t>("Blocked", 0);
  cm.record_join("Blocked", p,
                 {"Workload_Generator->Blocked", "VM_Job_Scheduler->Blocked",
                  "VCPU1->Blocked", "VCPU2->Blocked"});
  const std::string table = cm.render_join_table();
  EXPECT_NE(table.find("State Variable Name"), std::string::npos);
  EXPECT_NE(table.find("Blocked"), std::string::npos);
  EXPECT_NE(table.find("Workload_Generator->Blocked"), std::string::npos);
  EXPECT_NE(table.find("VCPU2->Blocked"), std::string::npos);
}

TEST(ComposedModel, JoinRegistryKeepsInsertionOrder) {
  ComposedModel cm("S");
  auto& a = cm.add_submodel("A");
  auto p1 = a.add_place<std::int64_t>("p1", 0);
  auto p2 = a.add_place<std::int64_t>("p2", 0);
  cm.record_join("first", p1, {"A->p1"});
  cm.record_join("second", p2, {"A->p2"});
  ASSERT_EQ(cm.join_registry().size(), 2u);
  EXPECT_EQ(cm.join_registry()[0].shared_name, "first");
  EXPECT_EQ(cm.join_registry()[1].shared_name, "second");
}

}  // namespace
}  // namespace vcpusim::san
