// Randomized SAN model stress test: generate random place / activity /
// gate graphs and require that every one is either rejected by the
// static analyzer or simulates cleanly — no negative markings, settle
// convergence, trajectory determinism across enabling modes. Runs under
// the sanitizer CI legs like every other san test.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "san/analyze/analyzer.hpp"
#include "san/model.hpp"
#include "san/simulator.hpp"
#include "stats/distribution.hpp"
#include "testing/helpers.hpp"

namespace vcpusim::san {
namespace {

using vcpusim::testing::PropertyRng;

using IntPlace = std::shared_ptr<Place<std::int64_t>>;

/// A randomly wired token net. Construction invariants keep it
/// *dynamically* well-formed — every consumer is guarded by a predicate
/// covering what it takes, every instantaneous activity strictly drains
/// its guard place — so a clean simulation is always achievable; whether
/// the *static* analyzer accepts it depends on the (randomly partial)
/// footprint declarations.
struct RandomNet {
  ComposedModel model{"Random"};
  std::vector<IntPlace> places;

  explicit RandomNet(PropertyRng& rng) {
    auto& sub = model.add_submodel("N");
    const int num_places = rng.uniform_int(2, 8);
    places.reserve(static_cast<std::size_t>(num_places));
    for (int p = 0; p < num_places; ++p) {
      places.push_back(sub.add_place<std::int64_t>(
          "p" + std::to_string(p),
          static_cast<std::int64_t>(rng.uniform_int(0, 3))));
    }

    const int num_timed = rng.uniform_int(1, 6);
    for (int a = 0; a < num_timed; ++a) {
      auto& act = sub.add_timed_activity(
          "t" + std::to_string(a),
          rng.chance(0.5)
              ? stats::make_deterministic(rng.uniform(0.5, 3.0))
              : stats::make_exponential(rng.uniform(0.5, 3.0)));
      wire(rng, act, /*must_consume=*/false);
    }
    const int num_inst = rng.uniform_int(0, 2);
    for (int a = 0; a < num_inst; ++a) {
      auto& act = sub.add_instantaneous_activity("i" + std::to_string(a),
                                                 rng.uniform_int(0, 3));
      // Instantaneous activities must strictly drain their guard place
      // or enabling would persist across zero-time rounds (livelock).
      wire(rng, act, /*must_consume=*/true);
    }
  }

 private:
  IntPlace pick(PropertyRng& rng) {
    return places[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(places.size()) - 1))];
  }

  void wire(PropertyRng& rng, Activity& act, bool must_consume) {
    IntPlace src = pick(rng);
    IntPlace dst = pick(rng);
    const auto take = static_cast<std::int64_t>(rng.uniform_int(1, 2));
    const bool declared = rng.chance(0.7);  // footprints randomly partial

    InputGate in;
    in.name = act.name() + "_in";
    in.predicate = [src, take]() { return src->get() >= take; };
    const bool consume = must_consume || rng.chance(0.8);
    if (consume) {
      in.input_function = [src, take](GateContext&) { src->mut() -= take; };
    }
    if (declared) {
      in.footprint = consume ? access({src}, {src}) : access({src});
    }
    act.add_input_gate(std::move(in));

    OutputGate out;
    out.name = act.name() + "_out";
    // Instantaneous firings must strictly shrink the total token count,
    // or zero-time cycles (i0 moving p1->p2 while i1 moves p2->p1) spin
    // forever; timed activities may mint tokens freely.
    const auto give = static_cast<std::int64_t>(
        must_consume ? rng.uniform_int(0, static_cast<int>(take) - 1)
                     : rng.uniform_int(0, 2));
    out.function = [dst, give](GateContext&) { dst->mut() += give; };
    if (declared) out.footprint = access({}, {dst});
    act.add_output_gate(std::move(out));
  }
};

TEST(RandomModelStress, AnalyzeRejectsOrSimulatesWithoutViolations) {
  int analyzed_clean = 0;
  int rejected = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    PropertyRng rng(seed);
    RandomNet net(rng);

    const auto report = analyze::Analyzer().analyze(net.model);
    if (report.errors() > 0) {
      ++rejected;  // the analyzer's verdict is a valid outcome
      continue;
    }
    ++analyzed_clean;

    SimulatorConfig config;
    config.end_time = 50.0;
    config.seed = seed;
    Simulator sim(config);
    sim.set_model(net.model);
    const auto stats = sim.run();
    EXPECT_FALSE(stats.hit_event_cap) << "seed " << seed;
    for (const auto& place : net.places) {
      EXPECT_GE(place->get(), 0)
          << "negative marking in " << place->name() << " (seed " << seed
          << ")";
    }
  }
  // The generator must actually exercise the simulate path, not just
  // produce analyzer-rejected graphs.
  EXPECT_GT(analyzed_clean, 10) << "rejected " << rejected << " models";
}

TEST(RandomModelStress, TrajectoriesMatchAcrossEnablingModes) {
  // For every random net that survives analysis, the final marking must
  // not depend on whether the footprint-driven enabling index is used —
  // even when declarations are partial (partial means conservative).
  for (std::uint64_t seed = 100; seed <= 130; ++seed) {
    std::vector<std::vector<std::int64_t>> finals;
    for (const bool incremental : {true, false}) {
      PropertyRng rng(seed);
      RandomNet net(rng);
      if (analyze::Analyzer().analyze(net.model).errors() > 0) break;
      SimulatorConfig config;
      config.end_time = 40.0;
      config.seed = seed;
      config.incremental_enabling = incremental;
      Simulator sim(config);
      sim.set_model(net.model);
      sim.run();
      std::vector<std::int64_t> marking;
      marking.reserve(net.places.size());
      for (const auto& place : net.places) marking.push_back(place->get());
      finals.push_back(std::move(marking));
    }
    if (finals.size() == 2) {
      EXPECT_EQ(finals[0], finals[1]) << "seed " << seed;
    }
  }
}

TEST(RandomModelStress, ReplicationsAreReproducible) {
  for (std::uint64_t seed = 200; seed <= 210; ++seed) {
    std::vector<std::uint64_t> event_counts;
    for (int run = 0; run < 2; ++run) {
      PropertyRng rng(seed);
      RandomNet net(rng);
      SimulatorConfig config;
      config.end_time = 30.0;
      config.seed = seed;
      Simulator sim(config);
      sim.set_model(net.model);
      event_counts.push_back(sim.run().events);
    }
    EXPECT_EQ(event_counts[0], event_counts[1]) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vcpusim::san
