#include "trace/latency.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "testing/helpers.hpp"

namespace vcpusim::trace {
namespace {

san::RunStats run_with(vm::VirtualSystem& system,
                       BarrierLatencyAnalyzer& analyzer, double end,
                       std::uint64_t seed = 1) {
  san::SimulatorConfig config;
  config.end_time = end;
  config.seed = seed;
  san::Simulator sim(config);
  sim.set_model(*system.model);
  sim.add_observer(analyzer);
  return sim.run();
}

TEST(BarrierLatency, NoSyncMeansNoEpisodes) {
  auto system = vm::build_system(vm::make_symmetric_config(2, {2}, 0),
                                 sched::make_factory("rrs")());
  BarrierLatencyAnalyzer analyzer(*system);
  run_with(*system, analyzer, 500.0);
  EXPECT_TRUE(analyzer.episodes(0).empty());
  EXPECT_EQ(analyzer.overall().count(), 0u);
}

TEST(BarrierLatency, ObservesBarriersUnderContention) {
  // 2-VCPU VM on 1 PCPU, tight sync: barriers stall visibly.
  auto system = vm::build_system(vm::make_symmetric_config(1, {2}, 2),
                                 sched::make_factory("rrs")());
  BarrierLatencyAnalyzer analyzer(*system);
  run_with(*system, analyzer, 2000.0, 7);
  EXPECT_GT(analyzer.episodes(0).size(), 20u);
  EXPECT_GT(analyzer.summary(0).mean(), 1.0);
  for (const double d : analyzer.episodes(0)) EXPECT_GE(d, 0.0);
}

TEST(BarrierLatency, CoSchedulingShortensEpisodes) {
  // The core claim of the paper, at the episode level: under contention
  // that splits siblings ({2,3} VCPUs on 3 PCPUs — with {2,2} on 2 PCPUs
  // round-robin degenerates into gang alternation and the algorithms
  // tie), co-scheduling drains barriers faster than round-robin.
  const auto cfg = vm::make_symmetric_config(3, {2, 3}, 3);

  auto rr = vm::build_system(cfg, sched::make_factory("rrs")());
  BarrierLatencyAnalyzer rr_latency(*rr);
  run_with(*rr, rr_latency, 4000.0, 11);

  auto scs = vm::build_system(cfg, sched::make_factory("scs")());
  BarrierLatencyAnalyzer scs_latency(*scs);
  run_with(*scs, scs_latency, 4000.0, 11);

  auto rcs = vm::build_system(cfg, sched::make_factory("rcs")());
  BarrierLatencyAnalyzer rcs_latency(*rcs);
  run_with(*rcs, rcs_latency, 4000.0, 11);

  ASSERT_GT(rr_latency.overall().count(), 50u);
  ASSERT_GT(scs_latency.overall().count(), 50u);
  ASSERT_GT(rcs_latency.overall().count(), 50u);
  EXPECT_LT(scs_latency.overall().mean(), rr_latency.overall().mean());
  EXPECT_LT(rcs_latency.overall().mean(), rr_latency.overall().mean());
}

TEST(BarrierLatency, PerVmSeparation) {
  // Only VM1 has sync points; VM2 must never block.
  auto cfg = vm::make_symmetric_config(2, {2, 2}, 3);
  cfg.vms[1].sync_ratio_k = 0;
  auto system = vm::build_system(cfg, sched::make_factory("rrs")());
  BarrierLatencyAnalyzer analyzer(*system);
  run_with(*system, analyzer, 2000.0, 13);
  EXPECT_GT(analyzer.episodes(0).size(), 10u);
  EXPECT_TRUE(analyzer.episodes(1).empty());
}

TEST(BarrierLatency, ReportMentionsVmNames) {
  auto system = vm::build_system(vm::make_symmetric_config(2, {2}, 3),
                                 sched::make_factory("rrs")());
  BarrierLatencyAnalyzer analyzer(*system);
  run_with(*system, analyzer, 500.0);
  const auto report = analyzer.report();
  EXPECT_NE(report.find("VM_1:"), std::string::npos);
  EXPECT_NE(report.find("barriers"), std::string::npos);
}

}  // namespace
}  // namespace vcpusim::trace
