#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "testing/helpers.hpp"

namespace vcpusim::trace {
namespace {

std::unique_ptr<vm::VirtualSystem> small_system(int pcpus = 1,
                                                std::vector<int> vms = {1, 1}) {
  return vm::build_system(vm::make_symmetric_config(pcpus, vms, 0),
                          sched::make_factory("rrs")());
}

san::RunStats run_with(vm::VirtualSystem& system, TimelineRecorder& recorder,
                       double end, std::uint64_t seed = 1) {
  san::SimulatorConfig config;
  config.end_time = end;
  config.seed = seed;
  san::Simulator sim(config);
  sim.set_model(*system.model);
  sim.add_observer(recorder);
  return sim.run();
}

TEST(Timeline, SamplesOncePerSchedulerTick) {
  auto system = small_system();
  TimelineRecorder recorder(*system);
  run_with(*system, recorder, 20.0);
  EXPECT_EQ(recorder.ticks(), 20u);
  EXPECT_EQ(recorder.num_vcpus(), 2);
}

TEST(Timeline, BoundedTicksKeepTail) {
  auto system = small_system();
  TimelineRecorder recorder(*system, 5);
  run_with(*system, recorder, 20.0);
  EXPECT_EQ(recorder.ticks(), 5u);
}

TEST(Timeline, StatesReflectContention) {
  // 2 single-VCPU VMs on 1 PCPU: at every tick exactly one VCPU is
  // scheduled; the other is INACTIVE.
  auto system = small_system();
  TimelineRecorder recorder(*system);
  run_with(*system, recorder, 40.0);
  for (std::size_t t = 1; t < recorder.ticks(); ++t) {  // skip warm tick 1
    int active = 0;
    for (int v = 0; v < 2; ++v) {
      if (recorder.state(t, v) != TickState::kInactive) ++active;
      if (recorder.state(t, v) != TickState::kInactive) {
        EXPECT_EQ(recorder.pcpu(t, v), 0);
      } else {
        EXPECT_EQ(recorder.pcpu(t, v), -1);
      }
    }
    EXPECT_EQ(active, 1) << "tick " << t;
  }
}

TEST(Timeline, FractionsSumToOne) {
  auto system = small_system(2, {2, 1});
  TimelineRecorder recorder(*system);
  run_with(*system, recorder, 100.0);
  for (int v = 0; v < 3; ++v) {
    const double total = recorder.fraction(v, TickState::kInactive) +
                         recorder.fraction(v, TickState::kReady) +
                         recorder.fraction(v, TickState::kBusy) +
                         recorder.fraction(v, TickState::kSpinning);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Timeline, BusyDominatesForSaturatedUncontendedSystem) {
  auto system = small_system(2, {1, 1});  // a PCPU each, saturating load
  TimelineRecorder recorder(*system);
  run_with(*system, recorder, 100.0);
  for (int v = 0; v < 2; ++v) {
    EXPECT_GT(recorder.fraction(v, TickState::kBusy), 0.9);
  }
}

TEST(Timeline, SpinStateRendered) {
  auto cfg = vm::make_symmetric_config(4, {4}, 0);
  cfg.vms[0].spinlock.enabled = true;
  cfg.vms[0].spinlock.lock_probability = 1.0;
  cfg.vms[0].spinlock.critical_fraction = 1.0;
  auto system = vm::build_system(std::move(cfg), sched::make_factory("rrs")());
  TimelineRecorder recorder(*system);
  run_with(*system, recorder, 100.0);
  double spin_total = 0;
  for (int v = 0; v < 4; ++v) {
    spin_total += recorder.fraction(v, TickState::kSpinning);
  }
  EXPECT_GT(spin_total, 0.5);  // heavy contention: lots of '~'
  EXPECT_NE(recorder.render().find('~'), std::string::npos);
}

TEST(Timeline, RenderShape) {
  auto system = small_system();
  TimelineRecorder recorder(*system);
  run_with(*system, recorder, 30.0);
  const std::string gantt = recorder.render(10);
  EXPECT_NE(gantt.find("VM1.1 |"), std::string::npos);
  EXPECT_NE(gantt.find("VM2.1 |"), std::string::npos);
  EXPECT_NE(gantt.find("last 10 ticks"), std::string::npos);
}

}  // namespace
}  // namespace vcpusim::trace
