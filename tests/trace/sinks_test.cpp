#include "trace/sinks.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "testing/json.hpp"

namespace vcpusim::trace {
namespace {

using san::TraceCategory;
using san::TraceEvent;
using vcpusim::testing::parse_json;

TraceEvent fire_event(double t, std::uint64_t seq, std::string_view name,
                      std::int64_t case_index = 0) {
  return TraceEvent{TraceCategory::kFire, t, seq, name, case_index, 0, {}};
}

TEST(RingBufferSink, RetainsOwnedCopies) {
  RingBufferSink sink;
  {
    const std::string transient = "Model->Act";
    sink.on_event(fire_event(1.5, 3, transient, 2));
  }  // the emitter's string is gone; the sink must have copied
  ASSERT_EQ(sink.entries().size(), 1U);
  const auto& e = sink.entries().front();
  EXPECT_EQ(e.name, "Model->Act");
  EXPECT_EQ(e.category, TraceCategory::kFire);
  EXPECT_DOUBLE_EQ(e.time, 1.5);
  EXPECT_EQ(e.seq, 3U);
  EXPECT_EQ(e.a, 2);
}

TEST(RingBufferSink, BoundedCapacityKeepsTail) {
  RingBufferSink sink(3);
  for (int i = 0; i < 5; ++i) {
    sink.on_event(fire_event(static_cast<double>(i), i, "a", i));
  }
  EXPECT_EQ(sink.total_events(), 5U);
  EXPECT_EQ(sink.dropped(), 2U);
  ASSERT_EQ(sink.entries().size(), 3U);
  EXPECT_EQ(sink.entries().front().a, 2);
  EXPECT_EQ(sink.entries().back().a, 4);
}

TEST(RingBufferSink, CountByCategoryAndClear) {
  RingBufferSink sink;
  sink.on_event(fire_event(0, 0, "a"));
  sink.on_event(TraceEvent{TraceCategory::kScheduler, 0, 0, "sched", 1, 0,
                           "in"});
  EXPECT_EQ(sink.count(TraceCategory::kFire), 1U);
  EXPECT_EQ(sink.count(TraceCategory::kScheduler), 1U);
  EXPECT_EQ(sink.count(TraceCategory::kMarking), 0U);
  sink.clear();
  EXPECT_EQ(sink.total_events(), 0U);
  EXPECT_TRUE(sink.entries().empty());
}

TEST(RingBufferSink, ReplayForwardsInOrderHonoringFilter) {
  RingBufferSink source;
  source.on_event(fire_event(1, 0, "a"));
  source.on_event(TraceEvent{TraceCategory::kMarking, 1, 0, "p", 0, 0, "3"});
  source.on_event(fire_event(2, 1, "b"));

  RingBufferSink fires_only(0, san::trace_bit(TraceCategory::kFire));
  source.replay_into(fires_only);
  ASSERT_EQ(fires_only.entries().size(), 2U);
  EXPECT_EQ(fires_only.entries()[0].name, "a");
  EXPECT_EQ(fires_only.entries()[1].name, "b");
}

TEST(RingBufferSink, CategoryMaskPrefilters) {
  RingBufferSink sink(0, san::trace_bit(TraceCategory::kScheduler));
  EXPECT_TRUE(sink.wants(TraceCategory::kScheduler));
  EXPECT_FALSE(sink.wants(TraceCategory::kFire));
  EXPECT_FALSE(sink.wants(TraceCategory::kMarking));
}

TEST(JsonlSink, EveryLineIsValidJsonWithKindField) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.on_event(fire_event(1.25, 0, "M->A", 1));
  sink.on_event(TraceEvent{TraceCategory::kEnabling, 1.25, 0, "M->B", 1, 0,
                           {}});
  sink.on_event(TraceEvent{TraceCategory::kMarking, 1.25, 0, "M->P", 0, 0,
                           "7"});
  sink.on_event(TraceEvent{TraceCategory::kScheduler, 2.0, 1, "sched", 3, 1,
                           "in"});
  sink.on_event(TraceEvent{TraceCategory::kMarker, 0.0, 0, "replication", 4,
                           0, {}});
  sink.finish();

  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const auto doc = parse_json(line);
    EXPECT_TRUE(doc.has("kind")) << line;
    EXPECT_TRUE(doc.has("t")) << line;
    EXPECT_TRUE(doc.has("seq")) << line;
    ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST(JsonlSink, LineFormatIsPinned) {
  EXPECT_EQ(JsonlSink::line(fire_event(1.5, 7, "M->A", 2)),
            R"({"kind":"fire","t":1.5,"seq":7,"activity":"M->A","case":2})");
  EXPECT_EQ(
      JsonlSink::line(TraceEvent{TraceCategory::kScheduler, 3.0, 9, "sched",
                                 2, -1, "out"}),
      R"({"kind":"sched","t":3,"seq":9,"op":"out","vcpu":2,"pcpu":-1})");
  EXPECT_EQ(
      JsonlSink::line(TraceEvent{TraceCategory::kMarking, 0.0, 0, "M->P", 0,
                                 0, "idle"}),
      R"({"kind":"marking","t":0,"seq":0,"place":"M->P","value":"idle"})");
}

TEST(JsonlSink, EscapesQuotesAndBackslashes) {
  const auto line = JsonlSink::line(TraceEvent{
      TraceCategory::kMarking, 0.0, 0, R"(P"x\y)", 0, 0, "v"});
  const auto doc = parse_json(line);
  EXPECT_EQ(doc.at("place").string, R"(P"x\y)");
}

TEST(JsonlSink, DoublesRoundTripExactly) {
  const double awkward = 0.1 + 0.2;  // not representable as "0.3"
  const auto line = JsonlSink::line(fire_event(awkward, 0, "a"));
  const auto doc = parse_json(line);
  EXPECT_EQ(doc.at("t").number, awkward);  // bit-exact via %.17g
}

TEST(ChromeTraceSink, EmitsValidTraceEventJson) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  sink.on_event(fire_event(2.0, 0, "M->A", 1));
  sink.on_event(TraceEvent{TraceCategory::kScheduler, 3.0, 1, "sched", 0, 1,
                           "in"});
  sink.on_event(TraceEvent{TraceCategory::kMarking, 3.0, 1, "M->P", 0, 0,
                           "5"});
  sink.finish();

  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0].at("name").string, "M->A");
  EXPECT_EQ(events[0].at("ph").string, "i");
  EXPECT_DOUBLE_EQ(events[0].at("ts").number, 2000.0);  // 1 tick = 1ms
  EXPECT_EQ(events[1].at("cat").string, "sched");
  EXPECT_EQ(events[2].at("ph").string, "C");  // numeric marking -> counter
  EXPECT_DOUBLE_EQ(events[2].at("args").at("value").number, 5.0);
}

TEST(ChromeTraceSink, NonNumericMarkingsAreSkipped) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  sink.on_event(TraceEvent{TraceCategory::kMarking, 1.0, 0, "M->P", 0, 0,
                           "<struct>"});
  sink.finish();
  const auto doc = parse_json(os.str());
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST(ChromeTraceSink, FinishWithoutEventsIsValid) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  sink.finish();
  const auto doc = parse_json(os.str());
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST(MakeStreamSink, ConstructsKnownSinks) {
  std::ostringstream os;
  EXPECT_NE(make_stream_sink("jsonl", os), nullptr);
  EXPECT_NE(make_stream_sink("chrome", os), nullptr);
}

TEST(MakeStreamSink, UnknownNameListsValidSinks) {
  std::ostringstream os;
  try {
    make_stream_sink("csv", os);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("csv"), std::string::npos);
    for (const auto& name : stream_sink_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(ParseTraceCategories, ParsesListsAndAll) {
  EXPECT_EQ(parse_trace_categories("all"), san::kTraceAll);
  EXPECT_EQ(parse_trace_categories("fire"),
            san::trace_bit(TraceCategory::kFire));
  EXPECT_EQ(parse_trace_categories("fire,sched"),
            static_cast<std::uint8_t>(san::trace_bit(TraceCategory::kFire) |
                                      san::trace_bit(TraceCategory::kScheduler)));
  EXPECT_EQ(parse_trace_categories("enabling,marking,marker"),
            static_cast<std::uint8_t>(
                san::trace_bit(TraceCategory::kEnabling) |
                san::trace_bit(TraceCategory::kMarking) |
                san::trace_bit(TraceCategory::kMarker)));
}

TEST(ParseTraceCategories, RejectsUnknownAndEmpty) {
  EXPECT_THROW(parse_trace_categories("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_trace_categories(""), std::invalid_argument);
  try {
    parse_trace_categories("fire,bogus");
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("sched"), std::string::npos);  // lists valid names
  }
}

}  // namespace
}  // namespace vcpusim::trace
