#include "trace/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "san/simulator.hpp"
#include "stats/distribution.hpp"

namespace vcpusim::trace {
namespace {

san::RunStats run_clock_model(EventLog& log, double end) {
  san::ComposedModel model("M");
  auto& sub = model.add_submodel("S");
  auto count = sub.add_place<std::int64_t>("count", 0);
  auto& clock = sub.add_timed_activity("clock", stats::make_deterministic(1.0));
  clock.add_output_gate(
      {"inc", [count](san::GateContext&) { count->mut() += 1; }});
  san::SimulatorConfig config;
  config.end_time = end;
  san::Simulator sim(config);
  sim.set_model(model);
  sim.add_observer(log);
  return sim.run();
}

TEST(EventLog, RecordsEveryCompletion) {
  EventLog log;
  const auto stats = run_clock_model(log, 10.0);
  EXPECT_EQ(log.entries().size(), stats.events);
  EXPECT_EQ(log.total_events(), stats.events);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.entries().front().activity, "S->clock");
  EXPECT_EQ(log.entries().front().time, 1.0);
  EXPECT_EQ(log.entries().back().time, 10.0);
}

TEST(EventLog, BoundedCapacityKeepsTail) {
  EventLog log(3);
  run_clock_model(log, 10.0);
  EXPECT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.total_events(), 10u);
  EXPECT_EQ(log.dropped(), 7u);
  EXPECT_EQ(log.entries().front().time, 8.0);
  EXPECT_EQ(log.entries().back().time, 10.0);
}

TEST(EventLog, CountMatching) {
  EventLog log;
  run_clock_model(log, 5.0);
  EXPECT_EQ(log.count_matching("clock"), 5u);
  EXPECT_EQ(log.count_matching("S->"), 5u);
  EXPECT_EQ(log.count_matching("missing"), 0u);
}

TEST(EventLog, CsvFormat) {
  EventLog log;
  run_clock_model(log, 2.0);
  std::ostringstream os;
  log.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time,activity,case\n"), std::string::npos);
  EXPECT_NE(csv.find("1,S->clock,0\n"), std::string::npos);
  EXPECT_NE(csv.find("2,S->clock,0\n"), std::string::npos);
}

TEST(EventLog, ClearResets) {
  EventLog log;
  run_clock_model(log, 5.0);
  log.clear();
  EXPECT_TRUE(log.entries().empty());
  EXPECT_EQ(log.total_events(), 0u);
}

}  // namespace
}  // namespace vcpusim::trace
