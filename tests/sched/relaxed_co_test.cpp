#include "sched/relaxed_co.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(RelaxedCo, Name) { EXPECT_EQ(make_relaxed_co()->name(), "RCS"); }

TEST(RelaxedCo, OptionValidation) {
  RcsOptions bad;
  bad.skew_threshold = 0.0;
  EXPECT_THROW(make_relaxed_co(bad), std::invalid_argument);
  RcsOptions inverted;
  inverted.skew_threshold = 5.0;
  inverted.resume_threshold = 10.0;
  EXPECT_THROW(make_relaxed_co(inverted), std::invalid_argument);
  RcsOptions ok;
  ok.skew_threshold = 5.0;
  ok.resume_threshold = 2.0;
  EXPECT_NO_THROW(make_relaxed_co(ok));
}

TEST(RelaxedCo, SchedulesWideVmOnOnePcpuUnlikeScs) {
  // Paper IV.A: "RCS is able to schedule the 2-VCPU VM" with 1 PCPU.
  auto system =
      build_system(make_symmetric_config(1, {2, 1, 1}, 5), make_relaxed_co());
  auto avail0 = vm::vcpu_availability(*system, 0, 200.0);
  auto avail1 = vm::vcpu_availability(*system, 1, 200.0);
  testing::run_system(*system, 4200.0, 1, {avail0.get(), avail1.get()});
  EXPECT_GT(avail0->time_averaged(4200.0), 0.03);
  EXPECT_GT(avail1->time_averaged(4200.0), 0.03);
}

TEST(RelaxedCo, BusyProgressSkewStaysBounded) {
  // Property: the cumulative BUSY-time gap between siblings never grows
  // far beyond skew_threshold (+ one timeslice of slack).
  RcsOptions options;
  options.skew_threshold = 8.0;
  auto spy =
      std::make_unique<testing::SpyScheduler>(make_relaxed_co(options));
  auto ticks = spy->ticks();
  auto cfg = make_symmetric_config(2, {2, 1, 1}, 4);
  cfg.default_timeslice = 5.0;
  auto system = build_system(cfg, std::move(spy));
  testing::run_system(*system, 2000.0, 9);

  // Recompute the differential skew of the 2-VCPU VM (globals 0 and 1)
  // from the spy's snapshots, exactly as the algorithm defines it: skew
  // grows by 1 while a sibling makes guest progress and this (runnable)
  // VCPU does not, shrinks while catching up, and resets while idle.
  std::vector<int> assigned_prev(system->vcpus.size(), -1);
  std::map<int, double> skew;
  double max_skew_seen = 0;
  for (const auto& t : *ticks) {
    std::map<int, bool> made, engaged;
    for (const auto& v : t.before) {
      if (v.vcpu_id > 1) continue;
      const bool was_busy =
          v.status == static_cast<int>(vm::VcpuStatus::kBusy) ||
          (v.assigned_pcpu < 0 && v.remaining_load > 0);
      made[v.vcpu_id] =
          assigned_prev[static_cast<std::size_t>(v.vcpu_id)] >= 0 && was_busy;
      engaged[v.vcpu_id] =
          v.status == static_cast<int>(vm::VcpuStatus::kBusy) ||
          v.remaining_load > 0;
    }
    for (const int v : {0, 1}) {
      const bool sibling_progressed = made[1 - v];
      if (!engaged[v]) {
        skew[v] = 0;
      } else {
        skew[v] = std::max(0.0, skew[v] + (sibling_progressed ? 1.0 : 0.0) -
                                    (made[v] ? 1.0 : 0.0));
      }
      max_skew_seen = std::max(max_skew_seen, skew[v]);
    }
    for (const auto& v : t.after) {
      assigned_prev[static_cast<std::size_t>(v.vcpu_id)] =
          v.schedule_in >= 0          ? v.schedule_in
          : (v.schedule_out != 0 ? -1 : v.assigned_pcpu);
    }
  }
  // The enforced bound is threshold plus slack: one timeslice of lead can
  // accrue before the co-stop lands, plus laggard catch-up wait.
  EXPECT_LE(max_skew_seen, options.skew_threshold + 2.0 * cfg.default_timeslice);
}

TEST(RelaxedCo, CoStartsWholeGangWhenPcpusAvailable) {
  // With 4 PCPUs and VMs {2,2}, RCS behaves like co-scheduling: full
  // availability, full utilization of demand.
  auto system =
      build_system(make_symmetric_config(4, {2, 2}, 5), make_relaxed_co());
  auto avail = vm::mean_vcpu_availability(*system, 10.0);
  testing::run_system(*system, 500.0, 1, {avail.get()});
  EXPECT_NEAR(avail->time_averaged(500.0), 1.0, 1e-9);
}

TEST(RelaxedCo, BetterPcpuUtilizationThanScsUnderFragmentation) {
  // Paper IV.B: RCS "can always achieve more than 90% PCPU utilization"
  // where SCS fragments.
  auto rcs_system =
      build_system(make_symmetric_config(4, {2, 3}, 5), make_relaxed_co());
  auto rcs_util = vm::pcpu_utilization(*rcs_system, 100.0);
  testing::run_system(*rcs_system, 2100.0, 3, {rcs_util.get()});
  EXPECT_GT(rcs_util->time_averaged(2100.0), 0.90);
}

TEST(RelaxedCo, ConstrainedLeadersWaitForLaggards) {
  // Two siblings on one PCPU: neither can run away; availability of the
  // two siblings stays close.
  auto system =
      build_system(make_symmetric_config(1, {2}, 4), make_relaxed_co());
  auto a0 = vm::vcpu_availability(*system, 0, 200.0);
  auto a1 = vm::vcpu_availability(*system, 1, 200.0);
  testing::run_system(*system, 4200.0, 11, {a0.get(), a1.get()});
  EXPECT_NEAR(a0->time_averaged(4200.0), a1->time_averaged(4200.0), 0.10);
}

TEST(RelaxedCo, ResumeDefaultsToHalfThreshold) {
  RcsOptions options;
  options.skew_threshold = 12.0;
  // No explicit resume: must construct fine and run.
  auto system =
      build_system(make_symmetric_config(2, {2, 2}, 5), make_relaxed_co(options));
  EXPECT_NO_THROW(testing::run_system(*system, 100.0));
}

}  // namespace
}  // namespace vcpusim::sched
