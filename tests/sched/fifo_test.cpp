#include "sched/fifo.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"
#include "vm/types.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(Fifo, Name) { EXPECT_EQ(make_fifo()->name(), "FIFO"); }

TEST(Fifo, OptionValidation) {
  FifoOptions bad;
  bad.max_timeslice = 0.0;
  EXPECT_THROW(make_fifo(bad), std::invalid_argument);
}

TEST(Fifo, JobsRunToCompletionWithoutPreemption) {
  // Property: a BUSY VCPU is never descheduled mid-job (snapshot never
  // shows an unassigned VCPU with remaining load under FIFO's cap).
  auto spy = std::make_unique<testing::SpyScheduler>(make_fifo());
  auto ticks = spy->ticks();
  auto cfg = make_symmetric_config(1, {1, 1}, 0);
  cfg.vms[0].load_distribution = stats::make_deterministic(20.0);
  cfg.vms[1].load_distribution = stats::make_deterministic(20.0);
  auto system = build_system(cfg, std::move(spy));
  testing::run_system(*system, 300.0, 3);
  for (const auto& t : *ticks) {
    for (const auto& v : t.before) {
      if (v.assigned_pcpu < 0) {
        EXPECT_LE(v.remaining_load, 0.0)
            << "VCPU " << v.vcpu_id << " preempted mid-job at tick "
            << t.timestamp;
      }
    }
  }
}

TEST(Fifo, YieldsWhenVmIsBlocked) {
  // A 2-VCPU VM on 1 PCPU with a tight barrier: when the VM blocks, the
  // READY VCPU must release the PCPU, so PCPU utilization < 1 is
  // impossible here (the sibling takes over) — instead check that
  // no tick shows a READY VCPU still holding a PCPU while another VCPU
  // with pending load waits.
  auto spy = std::make_unique<testing::SpyScheduler>(make_fifo());
  auto ticks = spy->ticks();
  auto system = build_system(make_symmetric_config(1, {2}, 2), std::move(spy));
  testing::run_system(*system, 500.0, 5);
  int ready_holding = 0;
  for (const auto& t : *ticks) {
    for (const auto& v : t.before) {
      if (v.assigned_pcpu >= 0 &&
          v.status == static_cast<int>(vm::VcpuStatus::kReady)) {
        ++ready_holding;
      }
    }
  }
  // A READY snapshot can appear for at most the single tick before the
  // yield is applied; it must never persist.
  EXPECT_LT(ready_holding, static_cast<int>(ticks->size()) / 4);
}

TEST(Fifo, LongJobMonopolizesUntilDone) {
  // VM1's job is 50 ticks long; VM2 must wait the full job duration
  // (no timeslice preemption), then run. Generation is throttled (one
  // job every 2 ticks) so the completing VCPU actually turns READY and
  // yields instead of being re-dispatched in the same instant.
  auto cfg = make_symmetric_config(1, {1, 1}, 0);
  cfg.vms[0].load_distribution = stats::make_deterministic(50.0);
  cfg.vms[1].load_distribution = stats::make_deterministic(50.0);
  cfg.vms[0].inter_generation = stats::make_deterministic(2.0);
  cfg.vms[1].inter_generation = stats::make_deterministic(2.0);
  auto system = build_system(cfg, make_fifo());
  auto a0 = vm::vcpu_availability(*system, 0, 0.0);
  auto a1 = vm::vcpu_availability(*system, 1, 0.0);
  testing::run_system(*system, 1000.0, 1, {a0.get(), a1.get()});
  // Alternating 50-tick blocks: both near 50%.
  EXPECT_NEAR(a0->time_averaged(1000.0), 0.5, 0.07);
  EXPECT_NEAR(a1->time_averaged(1000.0), 0.5, 0.07);
}

TEST(Fifo, CapBoundsOccupancy) {
  // With a 10-tick cap and 100-tick jobs, the holder is preempted at the
  // cap: both VCPUs make progress well before any job completes.
  FifoOptions options;
  options.max_timeslice = 10.0;
  auto cfg = make_symmetric_config(1, {1, 1}, 0);
  cfg.vms[0].load_distribution = stats::make_deterministic(100.0);
  cfg.vms[1].load_distribution = stats::make_deterministic(100.0);
  auto system = build_system(cfg, make_fifo(options));
  auto a0 = vm::vcpu_availability(*system, 0, 0.0);
  auto a1 = vm::vcpu_availability(*system, 1, 0.0);
  testing::run_system(*system, 100.0, 1, {a0.get(), a1.get()});
  EXPECT_GT(a0->time_averaged(100.0), 0.3);
  EXPECT_GT(a1->time_averaged(100.0), 0.3);
}

}  // namespace
}  // namespace vcpusim::sched
