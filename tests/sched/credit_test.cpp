#include "sched/credit.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(Credit, Name) { EXPECT_EQ(make_credit()->name(), "Credit"); }

TEST(Credit, OptionValidation) {
  CreditOptions bad_period;
  bad_period.accounting_period = 0;
  EXPECT_THROW(make_credit(bad_period), std::invalid_argument);
  CreditOptions bad_pool;
  bad_pool.credit_per_period = 0.0;
  EXPECT_THROW(make_credit(bad_pool), std::invalid_argument);
  CreditOptions bad_weight;
  bad_weight.vm_weights = {1.0, -2.0};
  EXPECT_THROW(make_credit(bad_weight), std::invalid_argument);
}

TEST(Credit, EqualWeightsShareEqually) {
  auto system =
      build_system(make_symmetric_config(1, {1, 1}, 0), make_credit());
  auto a0 = vm::vcpu_availability(*system, 0, 300.0);
  auto a1 = vm::vcpu_availability(*system, 1, 300.0);
  testing::run_system(*system, 6300.0, 1, {a0.get(), a1.get()});
  EXPECT_NEAR(a0->time_averaged(6300.0), 0.5, 0.05);
  EXPECT_NEAR(a1->time_averaged(6300.0), 0.5, 0.05);
}

TEST(Credit, WeightsSkewShares) {
  CreditOptions options;
  options.vm_weights = {3.0, 1.0};
  auto system = build_system(make_symmetric_config(1, {1, 1}, 0),
                             make_credit(options));
  auto a0 = vm::vcpu_availability(*system, 0, 300.0);
  auto a1 = vm::vcpu_availability(*system, 1, 300.0);
  testing::run_system(*system, 6300.0, 3, {a0.get(), a1.get()});
  const double share0 = a0->time_averaged(6300.0);
  const double share1 = a1->time_averaged(6300.0);
  EXPECT_GT(share0, share1 + 0.15);  // 3:1 weights separate clearly
  EXPECT_NEAR(share0 + share1, 1.0, 0.05);  // work-conserving
}

TEST(Credit, MissingWeightsDefaultToOne) {
  CreditOptions options;
  options.vm_weights = {2.0};  // second VM unspecified -> 1.0
  auto system = build_system(make_symmetric_config(1, {1, 1}, 0),
                             make_credit(options));
  auto a0 = vm::vcpu_availability(*system, 0, 300.0);
  auto a1 = vm::vcpu_availability(*system, 1, 300.0);
  testing::run_system(*system, 6300.0, 5, {a0.get(), a1.get()});
  EXPECT_GT(a0->time_averaged(6300.0), a1->time_averaged(6300.0));
}

TEST(Credit, VmCreditSplitsOverItsVcpus) {
  // Equal VM weights but different widths: the 2-VCPU VM's VCPUs each
  // get roughly half of what the 1-VCPU VM's VCPU gets.
  auto system =
      build_system(make_symmetric_config(1, {2, 1}, 0), make_credit());
  std::vector<std::unique_ptr<san::RewardVariable>> rewards;
  std::vector<san::RewardVariable*> raw;
  for (int v = 0; v < 3; ++v) {
    rewards.push_back(vm::vcpu_availability(*system, v, 300.0));
    raw.push_back(rewards.back().get());
  }
  testing::run_system(*system, 9300.0, 7, raw);
  const double wide0 = rewards[0]->time_averaged(9300.0);
  const double wide1 = rewards[1]->time_averaged(9300.0);
  const double narrow = rewards[2]->time_averaged(9300.0);
  EXPECT_NEAR(wide0, wide1, 0.08);          // siblings equal
  EXPECT_GT(narrow, wide0 + 0.10);          // per-VM fairness, not per-VCPU
}

TEST(Credit, WorkConservingUnderContention) {
  auto system =
      build_system(make_symmetric_config(2, {2, 2}, 0), make_credit());
  auto util = vm::pcpu_utilization(*system, 100.0);
  testing::run_system(*system, 2100.0, 1, {util.get()});
  EXPECT_GT(util->time_averaged(2100.0), 0.95);
}

}  // namespace
}  // namespace vcpusim::sched
