#include "sched/round_robin.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(RoundRobin, Name) { EXPECT_EQ(make_round_robin()->name(), "RRS"); }

TEST(RoundRobin, EqualSharesForIdenticalVcpus) {
  // 4 single-VCPU VMs on 1 PCPU: each gets 25% availability.
  auto system = build_system(make_symmetric_config(1, {1, 1, 1, 1}, 5),
                             make_round_robin());
  std::vector<std::unique_ptr<san::RewardVariable>> rewards;
  std::vector<san::RewardVariable*> raw;
  for (int v = 0; v < 4; ++v) {
    rewards.push_back(vm::vcpu_availability(*system, v, 200.0));
    raw.push_back(rewards.back().get());
  }
  testing::run_system(*system, 4200.0, 1, raw);
  for (auto& r : rewards) {
    EXPECT_NEAR(r->time_averaged(4200.0), 0.25, 0.01);
  }
}

TEST(RoundRobin, FairAcrossHeterogeneousVmSizes) {
  // Paper IV.A: "RRS always achieves scheduling fairness regardless of
  // the resource" — per-VCPU shares are equal even for the 2+1+1 setup.
  for (int pcpus = 1; pcpus <= 3; ++pcpus) {
    auto system = build_system(make_symmetric_config(pcpus, {2, 1, 1}, 5),
                               make_round_robin());
    std::vector<std::unique_ptr<san::RewardVariable>> rewards;
    std::vector<san::RewardVariable*> raw;
    for (int v = 0; v < 4; ++v) {
      rewards.push_back(vm::vcpu_availability(*system, v, 200.0));
      raw.push_back(rewards.back().get());
    }
    testing::run_system(*system, 4200.0, 1, raw);
    const double expected = pcpus / 4.0;
    for (auto& r : rewards) {
      EXPECT_NEAR(r->time_averaged(4200.0), expected, 0.02)
          << "pcpus=" << pcpus << " " << r->name();
    }
  }
}

TEST(RoundRobin, AllActiveWhenEnoughPcpus) {
  auto system =
      build_system(make_symmetric_config(4, {2, 2}, 5), make_round_robin());
  auto avail = vm::mean_vcpu_availability(*system, 10.0);
  testing::run_system(*system, 300.0, 1, {avail.get()});
  EXPECT_NEAR(avail->time_averaged(300.0), 1.0, 1e-9);
}

TEST(RoundRobin, RotationFollowsTimeslice) {
  // 2 VCPUs on 1 PCPU, timeslice 5: assignments alternate in blocks of 5.
  auto spy = std::make_unique<testing::SpyScheduler>(make_round_robin());
  auto ticks = spy->ticks();
  auto cfg = make_symmetric_config(1, {1, 1}, 0);
  cfg.default_timeslice = 5.0;
  auto system = build_system(cfg, std::move(spy));
  testing::run_system(*system, 25.0);
  // Reconstruct who runs after each tick's decisions.
  std::vector<int> owner;
  for (const auto& t : *ticks) {
    int running = -1;
    for (const auto& v : t.after) {
      if (v.assigned_pcpu >= 0 || v.schedule_in >= 0) running = v.vcpu_id;
    }
    owner.push_back(running);
  }
  ASSERT_GE(owner.size(), 20u);
  // Blocks of 5 identical owners, alternating.
  for (std::size_t i = 0; i + 10 <= 20; i += 10) {
    for (std::size_t j = 1; j < 5; ++j) EXPECT_EQ(owner[i + j], owner[i]);
    EXPECT_NE(owner[i + 5], owner[i]);
  }
}

TEST(RoundRobin, SchedulesIdleVcpusDespiteSemanticGap) {
  // A blocked VM's READY VCPUs keep receiving PCPUs (naive RR).
  auto system =
      build_system(make_symmetric_config(1, {2}, 2), make_round_robin());
  auto avail = vm::mean_vcpu_availability(*system, 100.0);
  auto util = vm::mean_vcpu_utilization(*system, 100.0);
  testing::run_system(*system, 2100.0, 3, {avail.get(), util.get()});
  // Availability stays at the full share even though utilization is
  // strictly lower (time wasted holding the PCPU while blocked).
  EXPECT_NEAR(avail->time_averaged(2100.0), 0.5, 0.02);
  EXPECT_LT(util->time_averaged(2100.0),
            avail->time_averaged(2100.0) - 0.02);
}

TEST(RoundRobin, EveryPcpuBusyWhenOvercommitted) {
  auto system =
      build_system(make_symmetric_config(3, {2, 2, 2}, 5), make_round_robin());
  auto util = vm::pcpu_utilization(*system, 50.0);
  testing::run_system(*system, 1000.0, 1, {util.get()});
  EXPECT_NEAR(util->time_averaged(1000.0), 1.0, 0.01);
}

}  // namespace
}  // namespace vcpusim::sched
