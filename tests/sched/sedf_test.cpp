#include "sched/sedf.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(Sedf, Name) { EXPECT_EQ(make_sedf()->name(), "SEDF"); }

TEST(Sedf, OptionValidation) {
  SedfOptions bad;
  bad.reservations = {{0.0, 10.0}};
  EXPECT_THROW(make_sedf(bad), std::invalid_argument);
  bad.reservations = {{5.0, 0.0}};
  EXPECT_THROW(make_sedf(bad), std::invalid_argument);
  bad.reservations = {{11.0, 10.0}};  // slice > period
  EXPECT_THROW(make_sedf(bad), std::invalid_argument);
}

TEST(Sedf, ReservationsDeliverProportionalShares) {
  // 3/10 vs 7/10 of one PCPU, non-work-conserving: availability matches
  // the reservations.
  SedfOptions options;
  options.reservations = {{3.0, 10.0}, {7.0, 10.0}};
  options.work_conserving = false;
  auto system =
      build_system(make_symmetric_config(1, {1, 1}, 0), make_sedf(options));
  auto a0 = vm::vcpu_availability(*system, 0, 200.0);
  auto a1 = vm::vcpu_availability(*system, 1, 200.0);
  testing::run_system(*system, 4200.0, 1, {a0.get(), a1.get()});
  EXPECT_NEAR(a0->time_averaged(4200.0), 0.3, 0.03);
  EXPECT_NEAR(a1->time_averaged(4200.0), 0.7, 0.03);
}

TEST(Sedf, NonWorkConservingLeavesSlackIdle) {
  // One VM reserving 2/10 of 1 PCPU, non-work-conserving: 80% idle.
  SedfOptions options;
  options.reservations = {{2.0, 10.0}};
  options.work_conserving = false;
  auto system =
      build_system(make_symmetric_config(1, {1}, 0), make_sedf(options));
  auto util = vm::pcpu_utilization(*system, 100.0);
  testing::run_system(*system, 2100.0, 1, {util.get()});
  EXPECT_NEAR(util->time_averaged(2100.0), 0.2, 0.03);
}

TEST(Sedf, WorkConservingModeUsesSlack) {
  SedfOptions options;
  options.reservations = {{2.0, 10.0}};
  options.work_conserving = true;
  auto system =
      build_system(make_symmetric_config(1, {1}, 0), make_sedf(options));
  auto util = vm::pcpu_utilization(*system, 100.0);
  testing::run_system(*system, 2100.0, 1, {util.get()});
  EXPECT_GT(util->time_averaged(2100.0), 0.95);
}

TEST(Sedf, ReservationIsGuaranteedDespiteCompetition) {
  // A tiny-reservation VM keeps its slice even against a hog with a big
  // reservation and work-conserving slack grabbing.
  SedfOptions options;
  options.reservations = {{2.0, 10.0}, {8.0, 10.0}};
  auto system =
      build_system(make_symmetric_config(1, {1, 1}, 0), make_sedf(options));
  auto small = vm::vcpu_availability(*system, 0, 200.0);
  testing::run_system(*system, 4200.0, 7, {small.get()});
  EXPECT_GT(small->time_averaged(4200.0), 0.18);
}

TEST(Sedf, MultiVcpuVmSharesItsBudget) {
  // A 2-VCPU VM reserving 10/10 of 2 PCPUs: both VCPUs run about half
  // the time each... in fact budget 10 per 10 ticks covers one PCPU's
  // worth, split across 2 VCPUs -> ~50% each plus work-conserving slack.
  SedfOptions options;
  options.reservations = {{10.0, 10.0}};
  options.work_conserving = false;
  auto system =
      build_system(make_symmetric_config(2, {2}, 0), make_sedf(options));
  auto avail = vm::mean_vcpu_availability(*system, 200.0);
  testing::run_system(*system, 4200.0, 9, {avail.get()});
  // Joint budget of 10 ticks per 10-tick period spread over 2 VCPUs.
  EXPECT_NEAR(avail->time_averaged(4200.0), 0.5, 0.08);
}

}  // namespace
}  // namespace vcpusim::sched
