#include "sched/registry.hpp"

#include <gtest/gtest.h>

namespace vcpusim::sched {
namespace {

TEST(Registry, AllBuiltinsResolve) {
  for (const auto& name : builtin_algorithms()) {
    const auto factory = make_factory(name);
    ASSERT_TRUE(factory) << name;
    auto scheduler = factory();
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_FALSE(scheduler->name().empty()) << name;
  }
}

TEST(Registry, PaperAlgorithmsComeFirst) {
  const auto names = builtin_algorithms();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "rrs");
  EXPECT_EQ(names[1], "scs");
  EXPECT_EQ(names[2], "rcs");
}

TEST(Registry, AliasesAndCaseInsensitivity) {
  EXPECT_EQ(make_factory("RRS")()->name(), "RRS");
  EXPECT_EQ(make_factory("round-robin")()->name(), "RRS");
  EXPECT_EQ(make_factory("rr")()->name(), "RRS");
  EXPECT_EQ(make_factory("Strict-Co")()->name(), "SCS");
  EXPECT_EQ(make_factory("RELAXED-CO")()->name(), "RCS");
  EXPECT_EQ(make_factory("stacked")()->name(), "RRS-stacked");
}

TEST(Registry, CatalogIsConsistentWithFactories) {
  const auto& catalog = algorithm_catalog();
  const auto names = builtin_algorithms();
  ASSERT_EQ(catalog.size(), names.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& info = catalog[i];
    EXPECT_EQ(info.name, names[i]);
    EXPECT_FALSE(info.summary.empty()) << info.name;
    // The catalog's display name is the Scheduler::name() the factory
    // actually produces, and every alias resolves to the same algorithm.
    EXPECT_EQ(make_factory(info.name)()->name(), info.display_name);
    for (const auto& alias : info.aliases) {
      EXPECT_EQ(make_factory(alias)()->name(), info.display_name) << alias;
    }
    // Options come with defaults and descriptions; an options struct is
    // named exactly when there are options.
    EXPECT_EQ(info.options.empty(), info.options_struct.empty()) << info.name;
    for (const auto& option : info.options) {
      EXPECT_FALSE(option.key.empty()) << info.name;
      EXPECT_FALSE(option.default_value.empty()) << info.name;
      EXPECT_FALSE(option.summary.empty()) << info.name;
    }
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_factory("nope"), std::invalid_argument);
  EXPECT_THROW(make_factory(""), std::invalid_argument);
}

TEST(Registry, FactoryProducesFreshInstances) {
  const auto factory = make_factory("rrs");
  auto a = factory();
  auto b = factory();
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace vcpusim::sched
