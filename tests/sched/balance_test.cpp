#include "sched/balance.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(Balance, Names) {
  EXPECT_EQ(make_stacked_round_robin()->name(), "RRS-stacked");
  EXPECT_EQ(make_balance()->name(), "Balance");
}

TEST(Balance, StackedRrPinsVcpusToHashedQueue) {
  // With per-PCPU queues and static hashing, a VCPU only ever runs on
  // pcpu (vcpu_id mod num_pcpus).
  auto spy =
      std::make_unique<testing::SpyScheduler>(make_stacked_round_robin());
  auto ticks = spy->ticks();
  auto system =
      build_system(make_symmetric_config(2, {2, 2}, 5), std::move(spy));
  testing::run_system(*system, 300.0, 3);
  for (const auto& t : *ticks) {
    for (const auto& v : t.after) {
      if (v.schedule_in >= 0) {
        EXPECT_EQ(v.schedule_in, v.vcpu_id % 2)
            << "VCPU " << v.vcpu_id << " at tick " << t.timestamp;
      }
    }
  }
}

TEST(Balance, BalancePlacesSiblingsOnDistinctPcpus) {
  // A 4-VCPU VM on 3 PCPUs: under balance, two siblings never run on the
  // same PCPU *simultaneously* is trivially true; the sharper check is
  // that sibling assignments cover distinct PCPUs whenever >= 2 run.
  auto spy = std::make_unique<testing::SpyScheduler>(make_balance());
  auto ticks = spy->ticks();
  auto system =
      build_system(make_symmetric_config(3, {4}, 5), std::move(spy));
  testing::run_system(*system, 300.0, 3);
  for (const auto& t : *ticks) {
    std::set<int> pcpus_used;
    int running = 0;
    for (const auto& v : t.before) {
      if (v.assigned_pcpu >= 0) {
        ++running;
        pcpus_used.insert(v.assigned_pcpu);
      }
    }
    EXPECT_EQ(static_cast<int>(pcpus_used.size()), running);
  }
}

TEST(Balance, AllVcpusEventuallyRun) {
  for (auto factory : {make_stacked_round_robin, make_balance}) {
    auto system = build_system(make_symmetric_config(2, {2, 2}, 5), factory());
    std::vector<std::unique_ptr<san::RewardVariable>> rewards;
    std::vector<san::RewardVariable*> raw;
    for (int v = 0; v < 4; ++v) {
      rewards.push_back(vm::vcpu_availability(*system, v, 100.0));
      raw.push_back(rewards.back().get());
    }
    testing::run_system(*system, 2100.0, 5, raw);
    for (auto& r : rewards) {
      EXPECT_GT(r->time_averaged(2100.0), 0.2) << r->name();
    }
  }
}

TEST(Balance, StackingHurtsVcpuUtilization) {
  // The Sukwong & Kim observation: stacking siblings on one run queue
  // inflates synchronization latency. Configuration chosen so hashing
  // stacks VM_1's two VCPUs on PCPU 0 (ids 0 and 2 with 2 PCPUs... use a
  // 3-VCPU VM on 2 PCPUs: ids 0,1,2 -> queues 0,1,0: stacked).
  const auto cfg = make_symmetric_config(2, {3}, 3);
  auto stacked_system = build_system(cfg, make_stacked_round_robin());
  auto stacked_util = vm::mean_vcpu_utilization(*stacked_system, 200.0);
  testing::run_system(*stacked_system, 4200.0, 7, {stacked_util.get()});

  auto balance_system = build_system(cfg, make_balance());
  auto balance_util = vm::mean_vcpu_utilization(*balance_system, 200.0);
  testing::run_system(*balance_system, 4200.0, 7, {balance_util.get()});

  EXPECT_GE(balance_util->time_averaged(4200.0),
            stacked_util->time_averaged(4200.0) - 0.02);
}

TEST(Balance, IdlePcpuWithEmptyQueueStaysIdle) {
  // 1 VCPU on 2 PCPUs under stacked RR: queue 1 is always empty, so
  // PCPU 1 is never assigned.
  auto spy =
      std::make_unique<testing::SpyScheduler>(make_stacked_round_robin());
  auto ticks = spy->ticks();
  auto system = build_system(make_symmetric_config(2, {1}, 0), std::move(spy));
  testing::run_system(*system, 100.0);
  for (const auto& t : *ticks) {
    EXPECT_EQ(t.pcpus[1].state, 0) << "tick " << t.timestamp;
  }
}

}  // namespace
}  // namespace vcpusim::sched
