#include "sched/strict_co.hpp"

#include <gtest/gtest.h>

#include <map>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(StrictCo, Name) { EXPECT_EQ(make_strict_co()->name(), "SCS"); }

TEST(StrictCo, GangInvariantHoldsEveryTick) {
  // Property: in the pre-decision snapshot of every tick, each VM's
  // VCPUs are either all assigned or all unassigned (co-start/co-stop).
  auto spy = std::make_unique<testing::SpyScheduler>(make_strict_co());
  auto ticks = spy->ticks();
  auto system =
      build_system(make_symmetric_config(3, {2, 2, 1}, 5), std::move(spy));
  testing::run_system(*system, 500.0, 7);
  ASSERT_FALSE(ticks->empty());
  for (const auto& t : *ticks) {
    std::map<int, std::pair<int, int>> per_vm;  // vm -> (assigned, total)
    for (const auto& v : t.before) {
      auto& [assigned, total] = per_vm[v.vm_id];
      ++total;
      if (v.assigned_pcpu >= 0) ++assigned;
    }
    for (const auto& [vm_id, counts] : per_vm) {
      EXPECT_TRUE(counts.first == 0 || counts.first == counts.second)
          << "tick " << t.timestamp << " VM " << vm_id << " has "
          << counts.first << "/" << counts.second << " VCPUs assigned";
    }
  }
}

TEST(StrictCo, VmWiderThanMachineStarves) {
  // Paper IV.A: with 1 PCPU, SCS cannot schedule the 2-VCPU VM at all.
  auto system =
      build_system(make_symmetric_config(1, {2, 1, 1}, 5), make_strict_co());
  std::vector<std::unique_ptr<san::RewardVariable>> rewards;
  std::vector<san::RewardVariable*> raw;
  for (int v = 0; v < 4; ++v) {
    rewards.push_back(vm::vcpu_availability(*system, v, 100.0));
    raw.push_back(rewards.back().get());
  }
  testing::run_system(*system, 2100.0, 1, raw);
  EXPECT_DOUBLE_EQ(rewards[0]->time_averaged(2100.0), 0.0);  // VM1 VCPU1
  EXPECT_DOUBLE_EQ(rewards[1]->time_averaged(2100.0), 0.0);  // VM1 VCPU2
  // The two 1-VCPU VMs split the PCPU.
  EXPECT_NEAR(rewards[2]->time_averaged(2100.0), 0.5, 0.02);
  EXPECT_NEAR(rewards[3]->time_averaged(2100.0), 0.5, 0.02);
}

TEST(StrictCo, FragmentationLeavesPcpusIdle) {
  // Paper IV.B: {2,3}-VCPU VMs on 4 PCPUs cannot both run; utilization
  // is visibly below 1 while RRS would pin it at 1.
  auto system =
      build_system(make_symmetric_config(4, {2, 3}, 5), make_strict_co());
  auto util = vm::pcpu_utilization(*system, 100.0);
  testing::run_system(*system, 2100.0, 3, {util.get()});
  const double u = util->time_averaged(2100.0);
  EXPECT_LT(u, 0.90);
  EXPECT_GT(u, 0.40);
}

TEST(StrictCo, PacksMultipleGangsWhenTheyFit) {
  // {2,2} on 4 PCPUs: both gangs run simultaneously at all times.
  auto system =
      build_system(make_symmetric_config(4, {2, 2}, 5), make_strict_co());
  auto avail = vm::mean_vcpu_availability(*system, 10.0);
  auto util = vm::pcpu_utilization(*system, 10.0);
  testing::run_system(*system, 500.0, 1, {avail.get(), util.get()});
  EXPECT_NEAR(avail->time_averaged(500.0), 1.0, 1e-9);
  EXPECT_NEAR(util->time_averaged(500.0), 1.0, 1e-9);
}

TEST(StrictCo, NonFittingVmDoesNotBlockQueue) {
  // {3,1} on 2 PCPUs: the 3-VCPU VM never fits, but the 1-VCPU VM must
  // still be scheduled (non-blocking queue scan).
  auto system =
      build_system(make_symmetric_config(2, {3, 1}, 5), make_strict_co());
  auto avail_small = vm::vcpu_availability(*system, 3, 100.0);
  testing::run_system(*system, 1100.0, 1, {avail_small.get()});
  EXPECT_GT(avail_small->time_averaged(1100.0), 0.9);
}

TEST(StrictCo, GangsAlternateFairly) {
  // Two identical 2-VCPU VMs on 2 PCPUs alternate gang-wise: equal
  // availability for all four VCPUs.
  auto system =
      build_system(make_symmetric_config(2, {2, 2}, 5), make_strict_co());
  std::vector<std::unique_ptr<san::RewardVariable>> rewards;
  std::vector<san::RewardVariable*> raw;
  for (int v = 0; v < 4; ++v) {
    rewards.push_back(vm::vcpu_availability(*system, v, 200.0));
    raw.push_back(rewards.back().get());
  }
  testing::run_system(*system, 4200.0, 2, raw);
  for (auto& r : rewards) {
    EXPECT_NEAR(r->time_averaged(4200.0), 0.5, 0.02) << r->name();
  }
}

TEST(StrictCo, EliminatesSynchronizationLatencyWhenGangFits) {
  // Paper IV.C: with co-scheduling, sibling jobs of a barrier phase run
  // simultaneously, so the blocked fraction is small compared to RRS
  // under the same over-committed setup. Here: the gang runs all its
  // VCPUs together whenever scheduled.
  auto spy = std::make_unique<testing::SpyScheduler>(make_strict_co());
  auto ticks = spy->ticks();
  auto system = build_system(make_symmetric_config(2, {2, 2}, 2), std::move(spy));
  auto util = vm::mean_vcpu_utilization(*system, 100.0);
  testing::run_system(*system, 2100.0, 5, {util.get()});
  EXPECT_GT(util->time_averaged(2100.0), 0.35);
}

}  // namespace
}  // namespace vcpusim::sched
