// Scheduler-contract checker tests: every builtin passes; deliberately
// broken factories / algorithms produce the exact diagnostic.
#include "sched/contract.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "sched/round_robin.hpp"

namespace vcpusim::sched {
namespace {

using san::analyze::Diagnostic;
using san::analyze::Severity;

bool any_message_contains(const std::vector<Diagnostic>& diags,
                          const std::string& needle) {
  for (const auto& d : diags) {
    if (d.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(SchedulerContract, AllBuiltinsPass) {
  const auto diagnostics = check_builtin_contracts();
  std::string rendered;
  for (const auto& d : diagnostics) rendered += d.to_text() + "\n";
  EXPECT_TRUE(diagnostics.empty()) << rendered;
}

TEST(SchedulerContract, NullFactoryDiagnosed) {
  const auto diags = check_scheduler_contract("null", vm::SchedulerFactory{});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.front().severity, Severity::kError);
  EXPECT_EQ(diags.front().check, san::analyze::check::kSchedulerContract);
  EXPECT_TRUE(any_message_contains(diags, "null scheduler factory"));
}

TEST(SchedulerContract, NullInstanceDiagnosed) {
  const auto diags = check_scheduler_contract(
      "broken", [] { return vm::SchedulerPtr{}; });
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(any_message_contains(diags, "returned a null scheduler"));
}

/// Keeps ONE stateful instance across factory calls — the
/// replication-safety violation the checker must catch. The internal
/// call counter has period 5, coprime to the checker's drive length, so
/// a warmed instance is guaranteed to diverge from a cold run.
TEST(SchedulerContract, SharedInstanceFactoryIsNotReplicationSafe) {
  struct Skewed : vm::Scheduler {
    long calls = 0;
    bool schedule(std::span<vm::VCPU_host_external> vcpus,
                  std::span<vm::PCPU_external> pcpus, long) override {
      const auto pick = static_cast<std::size_t>(calls++ % 5);
      if (pick < vcpus.size() && vcpus[pick].assigned_pcpu < 0) {
        for (const auto& p : pcpus) {
          if (p.assigned_vcpu < 0) {
            vcpus[pick].schedule_in = p.pcpu_id;
            break;
          }
        }
      }
      return true;
    }
    std::string name() const override { return "skewed"; }
  };
  auto shared = std::make_shared<Skewed>();

  struct Proxy : vm::Scheduler {
    std::shared_ptr<vm::Scheduler> inner;
    explicit Proxy(std::shared_ptr<vm::Scheduler> s) : inner(std::move(s)) {}
    void on_attach(const vm::SystemTopology& t) override {
      inner->on_attach(t);
    }
    bool schedule(std::span<vm::VCPU_host_external> v,
                  std::span<vm::PCPU_external> p, long t) override {
      return inner->schedule(v, p, t);
    }
    std::string name() const override { return inner->name(); }
  };

  const auto diags = check_scheduler_contract(
      "shared-skewed", [shared] { return std::make_unique<Proxy>(shared); });
  EXPECT_TRUE(any_message_contains(diags, "not replication-safe"))
      << "the warmed shared instance must diverge from a cold run";
}

namespace c_plugin {

/// Topology the attach hook saw, for the assertion below.
int attach_calls = 0;
int attached_vcpus = 0;
int attached_pcpus = 0;
int attached_siblings_of_0 = 0;

void record_attach(const vm::VCPU_topology_external* vcpus, int num_vcpu,
                   int num_pcpu) {
  ++attach_calls;
  attached_vcpus = num_vcpu;
  attached_pcpus = num_pcpu;
  attached_siblings_of_0 = num_vcpu > 0 ? vcpus[0].num_siblings : 0;
}

bool idle_forever(vm::VCPU_host_external*, int, vm::PCPU_external*, int,
                  long) {
  return true;
}

/// The replication-safety hazard the interface docs warn about: decision
/// state in a file-scope static survives across wrapper instances. Same
/// period-5 pattern as the shared-instance test above.
long stateful_calls = 0;

bool stateful_schedule(vm::VCPU_host_external* vcpus, int num_vcpu,
                       vm::PCPU_external* pcpus, int num_pcpu, long) {
  const auto pick = static_cast<int>(stateful_calls++ % 5);
  if (pick < num_vcpu && vcpus[pick].assigned_pcpu < 0) {
    for (int p = 0; p < num_pcpu; ++p) {
      if (pcpus[p].assigned_vcpu < 0) {
        vcpus[pick].schedule_in = pcpus[p].pcpu_id;
        break;
      }
    }
  }
  return true;
}

/// Decision bias the bad-reset plugin below reads. Its attach hook
/// clears it (so the replication-safety drives all run unbiased and
/// pass), but its reset hook *corrupts* it instead of restoring the
/// just-attached state — the pool-unsafety the reset drive must catch.
long bias = 0;

void clear_bias(const vm::VCPU_topology_external*, int, int) { bias = 0; }
void corrupt_bias(const vm::VCPU_topology_external*, int, int) { bias = 3; }

bool biased_schedule(vm::VCPU_host_external* vcpus, int num_vcpu,
                     vm::PCPU_external* pcpus, int num_pcpu, long tick) {
  const auto pick = static_cast<int>((tick + bias) % 5);
  if (pick < num_vcpu && vcpus[pick].assigned_pcpu < 0) {
    for (int p = 0; p < num_pcpu; ++p) {
      if (pcpus[p].assigned_vcpu < 0) {
        vcpus[pick].schedule_in = pcpus[p].pcpu_id;
        break;
      }
    }
  }
  return true;
}

}  // namespace c_plugin

TEST(SchedulerContract, CFunctionAttachHookReceivesTopology) {
  c_plugin::attach_calls = 0;
  const auto diags = check_scheduler_contract("c-idle", [] {
    return vm::wrap_c_function(c_plugin::idle_forever, "c-idle",
                               c_plugin::record_attach);
  });
  std::string rendered;
  for (const auto& d : diags) rendered += d.to_text() + "\n";
  EXPECT_TRUE(diags.empty()) << rendered;
  // One attach per instance (the checker builds two) plus one for the
  // reset drive (on_reset falls back to the attach hook when no reset
  // hook is given) — and the same again for the DVFS battery's two
  // fresh instances plus its reset drive. All six carry the harness's
  // 4-VCPU / 2x2-sibling / 2-PCPU topology.
  EXPECT_EQ(c_plugin::attach_calls, 6);
  EXPECT_EQ(c_plugin::attached_vcpus, 4);
  EXPECT_EQ(c_plugin::attached_pcpus, 2);
  EXPECT_EQ(c_plugin::attached_siblings_of_0, 2);
}

TEST(SchedulerContract, StatefulCFunctionIsNotReplicationSafe) {
  c_plugin::stateful_calls = 0;
  const auto diags = check_scheduler_contract("c-stateful", [] {
    return vm::wrap_c_function(c_plugin::stateful_schedule, "c-stateful");
  });
  EXPECT_TRUE(any_message_contains(diags, "not replication-safe"))
      << "file-scope static state must make the fresh instance diverge";
}

TEST(SchedulerContract, CResetHookThatCorruptsStateDiagnosed) {
  c_plugin::bias = 0;
  const auto diags = check_scheduler_contract("c-bad-reset", [] {
    return vm::wrap_c_function(c_plugin::biased_schedule, "c-bad-reset",
                               c_plugin::clear_bias, c_plugin::corrupt_bias);
  });
  EXPECT_FALSE(any_message_contains(diags, "not replication-safe"))
      << "unbiased drives must pass the replication-safety comparison";
  EXPECT_TRUE(any_message_contains(diags, "on_reset() does not restore"))
      << "a reset hook that perturbs state must fail the reset drive";
}

TEST(SchedulerContract, ResetThatMissesMemberStateDiagnosed) {
  // Per-instance member state makes the factory replication-safe, but a
  // no-op on_reset leaves the warmed counter in place: the pooled reuse
  // path would replay a different trajectory than a fresh build.
  struct Drifty : vm::Scheduler {
    long calls = 0;
    void on_reset(const vm::SystemTopology&) override {}  // keeps `calls`
    bool schedule(std::span<vm::VCPU_host_external> vcpus,
                  std::span<vm::PCPU_external> pcpus, long) override {
      const auto pick = static_cast<std::size_t>(calls++ % 5);
      if (pick < vcpus.size() && vcpus[pick].assigned_pcpu < 0) {
        for (const auto& p : pcpus) {
          if (p.assigned_vcpu < 0) {
            vcpus[pick].schedule_in = p.pcpu_id;
            break;
          }
        }
      }
      return true;
    }
    std::string name() const override { return "drifty"; }
  };

  const auto diags = check_scheduler_contract(
      "drifty", [] { return std::make_unique<Drifty>(); });
  EXPECT_FALSE(any_message_contains(diags, "not replication-safe"));
  EXPECT_TRUE(any_message_contains(diags, "on_reset() does not restore"));
}

TEST(SchedulerContract, SnapshotMutationDiagnosed) {
  struct Vandal : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external> vcpus,
                  std::span<vm::PCPU_external>, long) override {
      vcpus[0].remaining_load = -1.0;  // read-only field
      return true;
    }
    std::string name() const override { return "vandal"; }
  };

  const auto diags = check_scheduler_contract(
      "vandal", [] { return std::make_unique<Vandal>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.front().severity, Severity::kError);
  EXPECT_TRUE(any_message_contains(diags, "mutated a read-only snapshot"));
}

TEST(SchedulerContract, PcpuArrayMutationDiagnosed) {
  struct Vandal : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external>,
                  std::span<vm::PCPU_external> pcpus, long) override {
      pcpus[0].state = 1;
      pcpus[0].assigned_vcpu = 3;
      return true;
    }
    std::string name() const override { return "pcpu-vandal"; }
  };

  const auto diags = check_scheduler_contract(
      "pcpu-vandal", [] { return std::make_unique<Vandal>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "read-only PCPU snapshot field"));
}

TEST(SchedulerContract, OutOfRangeAssignmentDiagnosed) {
  struct Rogue : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external> vcpus,
                  std::span<vm::PCPU_external>, long) override {
      vcpus[0].schedule_in = 99;  // no such PCPU
      return true;
    }
    std::string name() const override { return "rogue"; }
  };

  const auto diags = check_scheduler_contract(
      "rogue", [] { return std::make_unique<Rogue>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "out-of-range PCPU 99"));
}

TEST(SchedulerContract, ThrowingSchedulerDiagnosed) {
  struct Thrower : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external>,
                  std::span<vm::PCPU_external>, long) override {
      throw std::runtime_error("boom");
    }
    std::string name() const override { return "thrower"; }
  };

  const auto diags = check_scheduler_contract(
      "thrower", [] { return std::make_unique<Thrower>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "threw"));
  EXPECT_TRUE(any_message_contains(diags, "boom"));
}

TEST(SchedulerContract, FailureReturnDiagnosed) {
  struct Refuser : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external>,
                  std::span<vm::PCPU_external>, long) override {
      return false;
    }
    std::string name() const override { return "refuser"; }
  };

  const auto diags = check_scheduler_contract(
      "refuser", [] { return std::make_unique<Refuser>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "reported failure"));
}

TEST(SchedulerContract, EmptyNameWarned) {
  struct Nameless : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external>,
                  std::span<vm::PCPU_external>, long) override {
      return true;  // idles forever: decision log stays empty but equal
    }
    std::string name() const override { return ""; }
  };

  const auto diags = check_scheduler_contract(
      "nameless", [] { return std::make_unique<Nameless>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.front().severity, Severity::kWarning);
  EXPECT_TRUE(any_message_contains(diags, "empty name()"));
}

}  // namespace
}  // namespace vcpusim::sched
