#include "sched/bvt.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(Bvt, Name) { EXPECT_EQ(make_bvt()->name(), "BVT"); }

TEST(Bvt, OptionValidation) {
  BvtOptions bad_weight;
  bad_weight.vm_weights = {0.0};
  EXPECT_THROW(make_bvt(bad_weight), std::invalid_argument);
  BvtOptions bad_allowance;
  bad_allowance.switch_allowance = -1.0;
  EXPECT_THROW(make_bvt(bad_allowance), std::invalid_argument);
}

TEST(Bvt, EqualWeightsShareEqually) {
  auto system = build_system(make_symmetric_config(1, {1, 1}, 0), make_bvt());
  auto a0 = vm::vcpu_availability(*system, 0, 200.0);
  auto a1 = vm::vcpu_availability(*system, 1, 200.0);
  testing::run_system(*system, 4200.0, 1, {a0.get(), a1.get()});
  EXPECT_NEAR(a0->time_averaged(4200.0), 0.5, 0.03);
  EXPECT_NEAR(a1->time_averaged(4200.0), 0.5, 0.03);
}

TEST(Bvt, WeightsProduceProportionalShares) {
  BvtOptions options;
  options.vm_weights = {3.0, 1.0};
  auto system =
      build_system(make_symmetric_config(1, {1, 1}, 0), make_bvt(options));
  auto a0 = vm::vcpu_availability(*system, 0, 300.0);
  auto a1 = vm::vcpu_availability(*system, 1, 300.0);
  testing::run_system(*system, 6300.0, 3, {a0.get(), a1.get()});
  const double share0 = a0->time_averaged(6300.0);
  const double share1 = a1->time_averaged(6300.0);
  // Virtual-time race: shares proportional to weights (3:1), work-conserving.
  EXPECT_NEAR(share0 / (share0 + share1), 0.75, 0.05);
  EXPECT_NEAR(share0 + share1, 1.0, 0.02);
}

TEST(Bvt, WarpIsALatencyBoostNotAShareBoost) {
  // Warp shifts EVT by a constant: the warped VM wins the dispatch race
  // early (it monopolizes the PCPU until its AVT burns through the warp)
  // but the *long-run* share is unchanged — the defining BVT property.
  BvtOptions options;
  options.vm_warps = {50.0, 0.0};

  // Short horizon: the warped VM dominates its warp window.
  auto early_system =
      build_system(make_symmetric_config(1, {1, 1}, 0), make_bvt(options));
  auto early_warped = vm::vcpu_availability(*early_system, 0, 0.0);
  auto early_plain = vm::vcpu_availability(*early_system, 1, 0.0);
  testing::run_system(*early_system, 60.0, 5,
                      {early_warped.get(), early_plain.get()});
  EXPECT_GT(early_warped->time_averaged(60.0), 0.75);
  EXPECT_LT(early_plain->time_averaged(60.0), 0.25);

  // Long horizon: shares converge to the (equal) weights.
  auto late_system =
      build_system(make_symmetric_config(1, {1, 1}, 0), make_bvt(options));
  auto late_warped = vm::vcpu_availability(*late_system, 0, 500.0);
  auto late_plain = vm::vcpu_availability(*late_system, 1, 500.0);
  testing::run_system(*late_system, 4500.0, 5,
                      {late_warped.get(), late_plain.get()});
  EXPECT_NEAR(late_warped->time_averaged(4500.0),
              late_plain->time_averaged(4500.0), 0.05);
}

TEST(Bvt, WorkConservingUnderContention) {
  auto system = build_system(make_symmetric_config(2, {2, 2}, 0), make_bvt());
  auto util = vm::pcpu_utilization(*system, 100.0);
  testing::run_system(*system, 2100.0, 1, {util.get()});
  EXPECT_GT(util->time_averaged(2100.0), 0.95);
}

TEST(Bvt, SwitchAllowanceLimitsChurn) {
  // With a huge allowance the first-scheduled VCPU is never preempted by
  // virtual time; with allowance ~0 the PCPU alternates every tick.
  BvtOptions sticky;
  sticky.switch_allowance = 1e9;
  auto spy = std::make_unique<testing::SpyScheduler>(make_bvt(sticky));
  auto ticks = spy->ticks();
  auto system = build_system(make_symmetric_config(1, {1, 1}, 0), std::move(spy));
  testing::run_system(*system, 100.0, 3);
  int switches = 0;
  int prev_owner = -1;
  for (const auto& t : *ticks) {
    for (const auto& v : t.after) {
      if (v.assigned_pcpu >= 0 || v.schedule_in >= 0) {
        if (prev_owner != -1 && v.vcpu_id != prev_owner) ++switches;
        prev_owner = v.vcpu_id;
      }
    }
  }
  EXPECT_LE(switches, 1);
}

}  // namespace
}  // namespace vcpusim::sched
