#include "sched/priority.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim::sched {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(Priority, Name) { EXPECT_EQ(make_priority()->name(), "Priority"); }

TEST(Priority, HigherPriorityVmMonopolizesUnderContention) {
  PriorityOptions options;
  options.vm_priorities = {10, 1};
  auto system = build_system(make_symmetric_config(1, {1, 1}, 0),
                             make_priority(options));
  auto a_high = vm::vcpu_availability(*system, 0, 100.0);
  auto a_low = vm::vcpu_availability(*system, 1, 100.0);
  testing::run_system(*system, 2100.0, 1, {a_high.get(), a_low.get()});
  EXPECT_GT(a_high->time_averaged(2100.0), 0.97);
  EXPECT_LT(a_low->time_averaged(2100.0), 0.03);
}

TEST(Priority, EqualPrioritiesShareLikeRoundRobin) {
  auto system =
      build_system(make_symmetric_config(1, {1, 1}, 0), make_priority());
  auto a0 = vm::vcpu_availability(*system, 0, 200.0);
  auto a1 = vm::vcpu_availability(*system, 1, 200.0);
  testing::run_system(*system, 4200.0, 1, {a0.get(), a1.get()});
  EXPECT_NEAR(a0->time_averaged(4200.0), 0.5, 0.03);
  EXPECT_NEAR(a1->time_averaged(4200.0), 0.5, 0.03);
}

TEST(Priority, PreemptionHappensImmediately) {
  // The low-priority VCPU is running (only contender at t=1)… except the
  // high-priority one is also queued from the start, so instead check the
  // steady state: the high VM is always assigned in every snapshot after
  // the first few ticks.
  PriorityOptions options;
  options.vm_priorities = {1, 10};
  auto spy =
      std::make_unique<testing::SpyScheduler>(make_priority(options));
  auto ticks = spy->ticks();
  auto system =
      build_system(make_symmetric_config(1, {1, 1}, 0), std::move(spy));
  testing::run_system(*system, 50.0, 1);
  for (const auto& t : *ticks) {
    if (t.timestamp < 3) continue;
    // Check the post-decision state: the high-priority VM either already
    // holds a PCPU or is (re-)granted one this very tick (at simultaneous
    // expiry ticks the pre-decision snapshot shows everyone unassigned).
    bool high_running = false;
    for (const auto& v : t.after) {
      if (v.vm_id == 1 && (v.assigned_pcpu >= 0 || v.schedule_in >= 0)) {
        high_running = true;
      }
    }
    EXPECT_TRUE(high_running) << "tick " << t.timestamp;
  }
}

TEST(Priority, LowPriorityRunsWhenHighIsSatisfied) {
  // 2 PCPUs, high VM has 1 VCPU: the second PCPU goes to the low VM.
  PriorityOptions options;
  options.vm_priorities = {10, 1};
  auto system = build_system(make_symmetric_config(2, {1, 1}, 0),
                             make_priority(options));
  auto a_low = vm::vcpu_availability(*system, 1, 50.0);
  testing::run_system(*system, 1050.0, 1, {a_low.get()});
  EXPECT_GT(a_low->time_averaged(1050.0), 0.95);
}

TEST(Priority, MissingPrioritiesDefaultToZero) {
  PriorityOptions options;
  options.vm_priorities = {5};  // VM 2 defaults to 0
  auto system = build_system(make_symmetric_config(1, {1, 1}, 0),
                             make_priority(options));
  auto a0 = vm::vcpu_availability(*system, 0, 100.0);
  testing::run_system(*system, 1100.0, 1, {a0.get()});
  EXPECT_GT(a0->time_averaged(1100.0), 0.95);
}

}  // namespace
}  // namespace vcpusim::sched
