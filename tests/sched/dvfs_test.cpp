// DVFS dimension tests: the contract checker's frequency drive catches
// deliberately broken fixtures (undeclared levels, frequency writes on
// a plain topology, snapshot mutation, DVFS-only state that reset or
// replication safety miss), and the shipped DVFS/rebalance families
// behave as documented.
#include "sched/dvfs.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sched/contract.hpp"
#include "sched/rebalance.hpp"
#include "sched/registry.hpp"

namespace vcpusim::sched {
namespace {

using san::analyze::Diagnostic;

bool any_message_contains(const std::vector<Diagnostic>& diags,
                          const std::string& needle) {
  for (const auto& d : diags) {
    if (d.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string rendered(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += d.to_text() + "\n";
  return out;
}

/// Round-robin work dispatch shared by the broken fixtures below: keeps
/// the base (non-DVFS) drives busy and contract-clean so the DVFS drive
/// is the only place a fixture can fail.
void dispatch_idle(std::span<vm::VCPU_host_external> vcpus,
                   std::span<vm::PCPU_external> pcpus) {
  for (auto& v : vcpus) {
    if (v.assigned_pcpu >= 0) continue;
    for (const auto& p : pcpus) {
      if (p.assigned_vcpu < 0) {
        bool taken = false;
        for (const auto& w : vcpus) taken |= w.schedule_in == p.pcpu_id;
        if (taken) continue;
        v.schedule_in = p.pcpu_id;
        break;
      }
    }
  }
}

TEST(DvfsContract, ShippedDvfsFamiliesPassEverything) {
  for (const std::string name : {"dvfs-cc", "dvfs-la", "rebalance"}) {
    const auto diags = check_scheduler_contract(name, make_factory(name));
    EXPECT_TRUE(diags.empty()) << name << ":\n" << rendered(diags);
  }
}

TEST(DvfsContract, UndeclaredLevelDiagnosed) {
  // Clean on the plain topology (only sets a frequency when the
  // snapshot says the system has one), but names level 99 on the DVFS
  // drive's three-level ladder.
  struct Overclocker : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external> vcpus,
                  std::span<vm::PCPU_external> pcpus, long) override {
      dispatch_idle(vcpus, pcpus);
      for (auto& p : pcpus) {
        if (p.freq_level >= 0) p.set_freq_level = 99;
      }
      return true;
    }
    std::string name() const override { return "overclocker"; }
  };

  const auto diags = check_scheduler_contract(
      "overclocker", [] { return std::make_unique<Overclocker>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "invalid set_freq_level"))
      << rendered(diags);
  EXPECT_TRUE(any_message_contains(diags, "undeclared level 99"))
      << rendered(diags);
}

TEST(DvfsContract, FrequencyWriteOnPlainTopologyDiagnosed) {
  // Unconditionally sets a frequency: legal on the DVFS ladder, a
  // ScheduleError on the base topology that declares no levels.
  struct Presumptuous : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external> vcpus,
                  std::span<vm::PCPU_external> pcpus, long) override {
      dispatch_idle(vcpus, pcpus);
      pcpus[0].set_freq_level = 0;
      return true;
    }
    std::string name() const override { return "presumptuous"; }
  };

  const auto diags = check_scheduler_contract(
      "presumptuous", [] { return std::make_unique<Presumptuous>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "no DVFS levels"))
      << rendered(diags);
}

TEST(DvfsContract, FreqLevelSnapshotMutationDiagnosed) {
  struct Vandal : vm::Scheduler {
    bool schedule(std::span<vm::VCPU_host_external>,
                  std::span<vm::PCPU_external> pcpus, long) override {
      pcpus[0].freq_level = 0;  // framework state, not a decision field
      return true;
    }
    std::string name() const override { return "freq-vandal"; }
  };

  const auto diags = check_scheduler_contract(
      "freq-vandal", [] { return std::make_unique<Vandal>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(
      any_message_contains(diags, "mutated a read-only PCPU snapshot field"))
      << rendered(diags);
}

/// DVFS-only hidden state: frequency decisions depend on a counter the
/// plain drives never exercise (they see freq_level = -1), so only the
/// DVFS battery can notice it. Period 5 is coprime to the drive length.
struct FlickerBase : vm::Scheduler {
  long calls = 0;
  bool schedule(std::span<vm::VCPU_host_external> vcpus,
                std::span<vm::PCPU_external> pcpus, long) override {
    dispatch_idle(vcpus, pcpus);
    if (pcpus[0].freq_level >= 0) {
      const int target = static_cast<int>(calls++ % 5) == 0 ? 0 : 2;
      if (target != pcpus[0].freq_level) pcpus[0].set_freq_level = target;
    }
    return true;
  }
};

TEST(DvfsContract, DvfsOnlyStateMissedByResetDiagnosed) {
  struct BadReset : FlickerBase {
    void on_reset(const vm::SystemTopology&) override {}  // keeps `calls`
    std::string name() const override { return "flicker-bad-reset"; }
  };

  const auto diags = check_scheduler_contract(
      "flicker-bad-reset", [] { return std::make_unique<BadReset>(); });
  ASSERT_FALSE(diags.empty());
  EXPECT_FALSE(any_message_contains(diags, "not replication-safe"))
      << rendered(diags);
  EXPECT_TRUE(any_message_contains(
      diags, "on_reset() does not restore the just-attached state on a "
             "DVFS topology"))
      << rendered(diags);
}

TEST(DvfsContract, DvfsOnlySharedStateIsNotReplicationSafe) {
  // One shared counter across factory calls: the fresh instance's DVFS
  // drive diverges from the cold run, but ONLY on the DVFS topology —
  // the diagnostic must say so.
  auto shared = std::make_shared<long>(0);
  struct SharedFlicker : vm::Scheduler {
    std::shared_ptr<long> calls;
    explicit SharedFlicker(std::shared_ptr<long> c) : calls(std::move(c)) {}
    bool schedule(std::span<vm::VCPU_host_external> vcpus,
                  std::span<vm::PCPU_external> pcpus, long) override {
      dispatch_idle(vcpus, pcpus);
      if (pcpus[0].freq_level >= 0) {
        const int target = static_cast<int>((*calls)++ % 5) == 0 ? 0 : 2;
        if (target != pcpus[0].freq_level) pcpus[0].set_freq_level = target;
      }
      return true;
    }
    std::string name() const override { return "shared-flicker"; }
  };

  const auto diags = check_scheduler_contract(
      "shared-flicker",
      [shared] { return std::make_unique<SharedFlicker>(shared); });
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(
      diags, "not replication-safe on a DVFS topology"))
      << rendered(diags);
}

TEST(DvfsOptions, ConstructorsValidate) {
  CycleConservingOptions cc;
  cc.window = 0;
  EXPECT_THROW(make_dvfs_cycle_conserving(cc), std::invalid_argument);
  cc.window = 8;
  cc.headroom = -0.1;
  EXPECT_THROW(make_dvfs_cycle_conserving(cc), std::invalid_argument);

  LookaheadOptions la;
  la.patience = 0;
  EXPECT_THROW(make_dvfs_lookahead(la), std::invalid_argument);

  RebalanceOptions rb;
  rb.period = 0;
  EXPECT_THROW(make_rebalance(rb), std::invalid_argument);
  rb.period = 16;
  rb.imbalance_threshold = 0;
  EXPECT_THROW(make_rebalance(rb), std::invalid_argument);
}

TEST(DvfsOptions, RegistryKnowsTheNewFamilies) {
  EXPECT_EQ(make_factory("dvfs-cc")()->name(), "DVFS-CC");
  EXPECT_EQ(make_factory("dvfs_cycle_conserving")()->name(), "DVFS-CC");
  EXPECT_EQ(make_factory("dvfs-la")()->name(), "DVFS-LA");
  EXPECT_EQ(make_factory("dvfs_lookahead")()->name(), "DVFS-LA");
  EXPECT_EQ(make_factory("rebalance")()->name(), "Rebalance");
}

}  // namespace
}  // namespace vcpusim::sched
