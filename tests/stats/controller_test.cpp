// Controller-equivalence matrix for the pluggable replication pipeline:
// FixedPolicyController must be bit-identical to the original monolithic
// loop (re-implemented here as a frozen reference), the adaptive
// controller must reproduce the fixed controller's estimates and stopping
// index with no more invocations, and the antithetic controller must be
// deterministic, jobs-invariant and fold pair means.
#include "stats/replication.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace vcpusim::stats {
namespace {

/// A deterministic pure-function observation, as real replications are
/// pure functions of their seed stream.
std::vector<double> stream_observation(const ReplicationTask& task) {
  Rng rng(0x9e3779b97f4a7c15ULL + task.stream.stream);
  rng.set_antithetic(task.stream.antithetic);
  return {rng.uniform01(), 10.0 + rng.uniform01()};
}

/// Single-metric projection of stream_observation.
std::vector<double> single_observation(const ReplicationTask& task) {
  return {stream_observation(task)[0]};
}

void expect_bitwise_equal(const ReplicationResult& a,
                          const ReplicationResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].name, b.metrics[m].name);
    EXPECT_EQ(a.metrics[m].ci.mean, b.metrics[m].ci.mean);
    EXPECT_EQ(a.metrics[m].ci.half_width, b.metrics[m].ci.half_width);
    EXPECT_EQ(a.metrics[m].samples.count(), b.metrics[m].samples.count());
    EXPECT_EQ(a.metrics[m].samples.mean(), b.metrics[m].samples.mean());
    EXPECT_EQ(a.metrics[m].samples.sample_variance(),
              b.metrics[m].samples.sample_variance());
  }
}

/// The pre-controller run_replications loop, frozen verbatim: sequential
/// fold, CI refresh past min_replications, stop when all metrics are
/// tight, cap at max_replications. The bit-identity baseline.
ReplicationResult reference_loop(const std::vector<std::string>& names,
                                 const ReplicationFn& fn,
                                 const ReplicationPolicy& policy) {
  ReplicationResult result;
  result.metrics.resize(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) result.metrics[i].name = names[i];
  for (std::size_t rep = 0; rep < policy.max_replications; ++rep) {
    const auto obs = fn(rep);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      result.metrics[i].samples.add(obs[i]);
    }
    result.replications = rep + 1;
    if (result.replications < policy.min_replications) continue;
    bool all_tight = true;
    for (auto& m : result.metrics) {
      m.ci = confidence_interval(m.samples, policy.confidence);
      if (!m.ci.converged(policy.target_half_width)) all_tight = false;
    }
    if (all_tight) {
      result.converged = true;
      return result;
    }
  }
  for (auto& m : result.metrics) {
    m.ci = confidence_interval(m.samples, policy.confidence);
  }
  result.converged = false;
  return result;
}

ReplicationPolicy mid_stream_policy() {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.max_replications = 37;
  policy.target_half_width = 0.08;  // converges somewhere mid-stream
  return policy;
}

// ---------------------------------------------------------------------
// Names and parsing.
// ---------------------------------------------------------------------

TEST(Controller, NamesRoundTripThroughParse) {
  for (const auto kind : {ControllerKind::kFixed, ControllerKind::kAdaptive,
                          ControllerKind::kAntithetic}) {
    ControllerKind parsed{};
    ASSERT_TRUE(parse_controller(controller_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  ControllerKind parsed{};
  EXPECT_FALSE(parse_controller("sequential", parsed));
  EXPECT_FALSE(parse_controller("", parsed));
}

TEST(Controller, MakeControllerReportsItsName) {
  const ReplicationPolicy policy;
  EXPECT_STREQ(make_controller(ControllerKind::kFixed, policy)->name(), "fixed");
  EXPECT_STREQ(make_controller(ControllerKind::kAdaptive, policy)->name(),
               "adaptive");
  EXPECT_STREQ(make_controller(ControllerKind::kAntithetic, policy)->name(),
               "antithetic");
}

// ---------------------------------------------------------------------
// Fixed controller: bit-identical to the pre-refactor loop.
// ---------------------------------------------------------------------

TEST(Controller, FixedMatchesFrozenReferenceLoop) {
  const auto indexed = [](std::size_t rep) {
    return stream_observation({rep, {rep, false}});
  };
  for (const double target : {1e-12, 0.05, 0.08, 1e9}) {
    ReplicationPolicy policy = mid_stream_policy();
    policy.target_half_width = target;
    SCOPED_TRACE("target=" + std::to_string(target));
    const auto reference = reference_loop({"u", "shifted"}, indexed, policy);
    const auto refactored =
        run_replications({"u", "shifted"}, indexed, policy);
    expect_bitwise_equal(reference, refactored);
    EXPECT_EQ(refactored.controller, "fixed");
  }
}

TEST(Controller, FixedStreamedApiMatchesLegacyOverload) {
  const auto policy = mid_stream_policy();
  const auto legacy = run_replications(
      {"u", "shifted"},
      [](std::size_t rep) { return stream_observation({rep, {rep, false}}); },
      policy);
  FixedPolicyController controller(policy);
  const auto streamed =
      run_replications({"u", "shifted"}, stream_observation, controller);
  expect_bitwise_equal(legacy, streamed);
}

TEST(Controller, FixedAssignsUnmirroredIdentityStreams) {
  const FixedPolicyController controller{ReplicationPolicy{}};
  for (const std::size_t rep : {0u, 1u, 7u, 100u}) {
    EXPECT_EQ(controller.stream(rep).stream, rep);
    EXPECT_FALSE(controller.stream(rep).antithetic);
  }
}

// ---------------------------------------------------------------------
// Adaptive controller: same estimates, less speculation, jobs-invariant.
// ---------------------------------------------------------------------

TEST(Controller, AdaptiveMatchesFixedEstimatesAndStoppingIndex) {
  const auto policy = mid_stream_policy();
  FixedPolicyController fixed(policy);
  const auto fixed_result =
      run_replications({"u", "shifted"}, stream_observation, fixed, 8);
  AdaptiveController adaptive(policy);
  const auto adaptive_result =
      run_replications({"u", "shifted"}, stream_observation, adaptive, 8);
  expect_bitwise_equal(fixed_result, adaptive_result);
  EXPECT_EQ(adaptive_result.controller, "adaptive");
  // Variance-sized batches never speculate more than jobs-sized ones.
  EXPECT_LE(adaptive_result.invoked, fixed_result.invoked);
  EXPECT_LE(adaptive_result.speculative_waste(),
            fixed_result.speculative_waste());
}

TEST(Controller, AdaptiveIsJobsInvariant) {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.max_replications = 200;
  policy.target_half_width = 0.1;
  AdaptiveController sequential_controller(policy);
  const auto sequential = run_replications({"u", "shifted"}, stream_observation,
                                           sequential_controller, 1);
  ASSERT_TRUE(sequential.converged);
  for (const std::size_t jobs : {2u, 3u, 8u, 16u}) {
    AdaptiveController controller(policy);
    const auto parallel =
        run_replications({"u", "shifted"}, stream_observation, controller, jobs);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_bitwise_equal(sequential, parallel);
  }
}

TEST(Controller, AdaptiveWastesNothingSequentially) {
  // With jobs = 1 every batch is one replication: zero speculation.
  const auto policy = mid_stream_policy();
  AdaptiveController controller(policy);
  const auto result =
      run_replications({"u", "shifted"}, stream_observation, controller, 1);
  EXPECT_EQ(result.speculative_waste(), 0u);
  EXPECT_EQ(result.invoked, result.replications);
}

// ---------------------------------------------------------------------
// Antithetic controller: mirrored pairs, pair-mean folding.
// ---------------------------------------------------------------------

TEST(Controller, AntitheticPairsShareAStreamWithMirroredOddPartner) {
  const AntitheticController controller{ReplicationPolicy{}};
  for (const std::size_t pair : {0u, 1u, 5u}) {
    const auto even = controller.stream(2 * pair);
    const auto odd = controller.stream(2 * pair + 1);
    EXPECT_EQ(even.stream, pair);
    EXPECT_EQ(odd.stream, pair);
    EXPECT_FALSE(even.antithetic);
    EXPECT_TRUE(odd.antithetic);
  }
}

TEST(Controller, AntitheticFoldsPairMeans) {
  ReplicationPolicy policy;
  policy.min_replications = 6;
  policy.max_replications = 6;
  policy.target_half_width = 1e9;
  AntitheticController controller(policy);
  const auto result = run_replications({"u"}, single_observation, controller, 1);
  EXPECT_EQ(result.replications, 6u);
  // Six raw replications folded as three pair-mean samples.
  EXPECT_EQ(result.metric("u").samples.count(), 3u);
  Welford expected;
  for (std::size_t pair = 0; pair < 3; ++pair) {
    const double primal = stream_observation({2 * pair, {pair, false}})[0];
    const double mirror = stream_observation({2 * pair + 1, {pair, true}})[0];
    expected.add(0.5 * (primal + mirror));
  }
  EXPECT_EQ(result.metric("u").samples.mean(), expected.mean());
  EXPECT_EQ(result.metric("u").samples.sample_variance(),
            expected.sample_variance());
}

TEST(Controller, AntitheticIsJobsInvariant) {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.max_replications = 60;
  policy.target_half_width = 0.05;
  AntitheticController sequential_controller(policy);
  const auto sequential = run_replications({"u", "shifted"}, stream_observation,
                                           sequential_controller, 1);
  ASSERT_TRUE(sequential.converged);
  for (const std::size_t jobs : {2u, 3u, 8u}) {
    AntitheticController controller(policy);
    const auto parallel =
        run_replications({"u", "shifted"}, stream_observation, controller, jobs);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_bitwise_equal(sequential, parallel);
    EXPECT_EQ(parallel.controller, "antithetic");
  }
}

TEST(Controller, AntitheticReducesVarianceOnMonotoneResponse) {
  // The response is monotone in the uniform draw, the canonical case
  // where mirroring induces negative pair correlation. At the same raw
  // replication count the pair-mean variance must shrink strictly below
  // half the independent variance (the rho = 0 baseline).
  ReplicationPolicy policy;
  policy.min_replications = 40;
  policy.max_replications = 40;
  policy.target_half_width = 1e-12;
  const auto monotone = [](const ReplicationTask& task) {
    Rng rng(123 + task.stream.stream);
    rng.set_antithetic(task.stream.antithetic);
    const double u = rng.uniform01();
    return std::vector<double>{u * u + 3.0 * u};
  };
  FixedPolicyController fixed(policy);
  const auto independent = run_replications({"m"}, monotone, fixed, 1);
  AntitheticController antithetic(policy);
  const auto paired = run_replications({"m"}, monotone, antithetic, 1);
  ASSERT_EQ(independent.replications, paired.replications);
  const double var_single = independent.metric("m").samples.sample_variance();
  const double var_pair = paired.metric("m").samples.sample_variance();
  EXPECT_LT(var_pair, 0.5 * var_single);
}

TEST(Controller, AntitheticStopsOnlyOnCompletePairs) {
  // A target reachable after the first complete pair past min: the
  // stopping replication count must be even.
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.max_replications = 100;
  policy.target_half_width = 0.1;
  AntitheticController controller(policy);
  const auto result = run_replications({"u"}, single_observation, controller, 8);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.replications % 2, 0u);
}

// ---------------------------------------------------------------------
// Observation recording (the paired-comparison hook).
// ---------------------------------------------------------------------

TEST(Controller, RecordObservationsKeepsFoldedRowsInOrder) {
  ReplicationPolicy policy = mid_stream_policy();
  policy.record_observations = true;
  FixedPolicyController controller(policy);
  const auto result =
      run_replications({"u", "shifted"}, stream_observation, controller, 8);
  ASSERT_EQ(result.observations.size(), result.replications);
  for (std::size_t rep = 0; rep < result.replications; ++rep) {
    const auto expected = stream_observation({rep, {rep, false}});
    ASSERT_EQ(result.observations[rep].size(), 2u);
    EXPECT_EQ(result.observations[rep][0], expected[0]);
    EXPECT_EQ(result.observations[rep][1], expected[1]);
  }
}

TEST(Controller, ObservationsStayEmptyByDefault) {
  FixedPolicyController controller{mid_stream_policy()};
  const auto result =
      run_replications({"u", "shifted"}, stream_observation, controller, 4);
  EXPECT_TRUE(result.observations.empty());
}

TEST(Controller, AntitheticRecordsRawReplicationsNotPairMeans) {
  ReplicationPolicy policy;
  policy.min_replications = 6;
  policy.max_replications = 6;
  policy.target_half_width = 1e9;
  policy.record_observations = true;
  AntitheticController controller(policy);
  const auto result = run_replications({"u"}, single_observation, controller, 1);
  ASSERT_EQ(result.observations.size(), 6u);
  for (std::size_t rep = 0; rep < 6; ++rep) {
    const auto expected =
        single_observation({rep, {rep / 2, (rep & 1U) != 0}});
    EXPECT_EQ(result.observations[rep][0], expected[0]);
  }
}

// ---------------------------------------------------------------------
// Policy preset.
// ---------------------------------------------------------------------

TEST(Controller, PaperPresetStatesThePaperTargets) {
  const auto policy = ReplicationPolicy::paper();
  EXPECT_DOUBLE_EQ(policy.confidence, 0.95);
  EXPECT_DOUBLE_EQ(policy.target_half_width, 0.02);
  EXPECT_EQ(policy.min_replications, 6u);
  EXPECT_EQ(policy.max_replications, 40u);
  EXPECT_FALSE(policy.record_observations);
}

}  // namespace
}  // namespace vcpusim::stats
