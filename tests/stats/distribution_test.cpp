#include "stats/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

namespace vcpusim::stats {
namespace {

struct SampleStats {
  double mean;
  double variance;
};

SampleStats sample_stats(const Distribution& dist, int n = 200000,
                         std::uint64_t seed = 42) {
  Rng rng(seed);
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  return {mean, sum_sq / n - mean * mean};
}

TEST(Deterministic, AlwaysReturnsValue) {
  Rng rng(1);
  auto d = make_deterministic(3.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d->sample(rng), 3.5);
  EXPECT_EQ(d->mean(), 3.5);
  EXPECT_EQ(d->variance(), 0.0);
}

TEST(Deterministic, RejectsNegative) {
  EXPECT_THROW(make_deterministic(-1.0), std::invalid_argument);
}

TEST(Uniform, SamplesWithinRange) {
  Rng rng(2);
  auto d = make_uniform(2.0, 8.0);
  for (int i = 0; i < 10000; ++i) {
    const double x = d->sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 8.0);
  }
}

TEST(Uniform, MomentsMatchAnalytic) {
  auto d = make_uniform(2.0, 8.0);
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, d->mean(), 0.02);
  EXPECT_NEAR(s.variance, d->variance(), 0.05);
}

TEST(Uniform, RejectsBadRange) {
  EXPECT_THROW(make_uniform(5.0, 2.0), std::invalid_argument);
  EXPECT_THROW(make_uniform(-1.0, 2.0), std::invalid_argument);
}

TEST(UniformInt, ProducesAllIntegersInclusive) {
  Rng rng(3);
  auto d = make_uniform_int(1, 10);
  std::set<double> seen;
  for (int i = 0; i < 5000; ++i) {
    const double x = d->sample(rng);
    EXPECT_EQ(x, std::floor(x));
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(UniformInt, MomentsMatchAnalytic) {
  auto d = make_uniform_int(1, 10);
  EXPECT_DOUBLE_EQ(d->mean(), 5.5);
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, 5.5, 0.03);
  EXPECT_NEAR(s.variance, d->variance(), 0.1);
}

TEST(Exponential, MomentsMatchAnalytic) {
  auto d = make_exponential(0.25);
  EXPECT_DOUBLE_EQ(d->mean(), 4.0);
  EXPECT_DOUBLE_EQ(d->variance(), 16.0);
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, 4.0, 0.05);
  EXPECT_NEAR(s.variance, 16.0, 0.5);
}

TEST(Exponential, NonNegative) {
  Rng rng(4);
  auto d = make_exponential(2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d->sample(rng), 0.0);
}

TEST(Exponential, RejectsNonPositiveRate) {
  EXPECT_THROW(make_exponential(0.0), std::invalid_argument);
  EXPECT_THROW(make_exponential(-1.0), std::invalid_argument);
}

TEST(Erlang, MomentsMatchAnalytic) {
  auto d = make_erlang(3, 0.5);
  EXPECT_DOUBLE_EQ(d->mean(), 6.0);
  EXPECT_DOUBLE_EQ(d->variance(), 12.0);
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, 6.0, 0.06);
  EXPECT_NEAR(s.variance, 12.0, 0.4);
}

TEST(Erlang, KOneEqualsExponentialInDistribution) {
  auto erl = make_erlang(1, 0.5);
  auto exp = make_exponential(0.5);
  EXPECT_DOUBLE_EQ(erl->mean(), exp->mean());
  EXPECT_DOUBLE_EQ(erl->variance(), exp->variance());
}

TEST(Erlang, RejectsBadParams) {
  EXPECT_THROW(make_erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_erlang(2, 0.0), std::invalid_argument);
}

TEST(TruncatedNormal, NonNegativeSamples) {
  Rng rng(5);
  auto d = make_truncated_normal(2.0, 3.0);  // heavy truncation
  for (int i = 0; i < 20000; ++i) EXPECT_GE(d->sample(rng), 0.0);
}

TEST(TruncatedNormal, MomentsMatchTruncatedAnalytic) {
  auto d = make_truncated_normal(5.0, 2.0);
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, d->mean(), 0.03);
  EXPECT_NEAR(s.variance, d->variance(), 0.1);
}

TEST(TruncatedNormal, FarFromZeroMatchesPlainNormal) {
  // With mu >> sigma, truncation is negligible: moments ~ (mu, sigma^2).
  auto d = make_truncated_normal(50.0, 2.0);
  EXPECT_NEAR(d->mean(), 50.0, 1e-6);
  EXPECT_NEAR(d->variance(), 4.0, 1e-6);
}

TEST(Geometric, SupportStartsAtOne) {
  Rng rng(6);
  auto d = make_geometric(0.3);
  for (int i = 0; i < 10000; ++i) {
    const double x = d->sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_EQ(x, std::floor(x));
  }
}

TEST(Geometric, MomentsMatchAnalytic) {
  auto d = make_geometric(0.25);
  EXPECT_DOUBLE_EQ(d->mean(), 4.0);
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, 4.0, 0.05);
  EXPECT_NEAR(s.variance, d->variance(), 0.5);
}

TEST(Geometric, POneAlwaysOne) {
  Rng rng(7);
  auto d = make_geometric(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d->sample(rng), 1.0);
}

TEST(Bernoulli, MeanMatchesP) {
  auto d = make_bernoulli(0.2);
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, 0.2, 0.005);
}

TEST(Bernoulli, OnlyZeroOrOne) {
  Rng rng(8);
  auto d = make_bernoulli(0.5);
  for (int i = 0; i < 1000; ++i) {
    const double x = d->sample(rng);
    EXPECT_TRUE(x == 0.0 || x == 1.0);
  }
}

TEST(Discrete, RespectsWeights) {
  auto d = make_discrete({{1.0, 3.0}, {2.0, 1.0}});
  const auto s = sample_stats(*d);
  EXPECT_NEAR(s.mean, 1.25, 0.01);  // 0.75*1 + 0.25*2
  EXPECT_NEAR(d->mean(), 1.25, 1e-12);
}

TEST(Discrete, ZeroWeightAtomNeverSampled) {
  Rng rng(9);
  auto d = make_discrete({{1.0, 1.0}, {99.0, 0.0}});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(d->sample(rng), 1.0);
}

TEST(Discrete, RejectsInvalid) {
  EXPECT_THROW(make_discrete({}), std::invalid_argument);
  EXPECT_THROW(make_discrete({{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(make_discrete({{-1.0, 1.0}}), std::invalid_argument);
}

// --- parse_distribution -----------------------------------------------

struct ParseCase {
  std::string spec;
  double mean;
};

class ParseDistribution : public ::testing::TestWithParam<ParseCase> {};

TEST_P(ParseDistribution, ParsesAndMeanMatches) {
  const auto& p = GetParam();
  auto d = parse_distribution(p.spec);
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->mean(), p.mean, 1e-9) << p.spec;
}

INSTANTIATE_TEST_SUITE_P(
    Specs, ParseDistribution,
    ::testing::Values(
        ParseCase{"deterministic(5)", 5.0},
        ParseCase{"det(2.5)", 2.5},
        ParseCase{"constant(1)", 1.0},
        ParseCase{"uniform(1,9)", 5.0},
        ParseCase{"UNIFORM( 1 , 9 )", 5.0},
        ParseCase{"uniformint(1,10)", 5.5},
        ParseCase{"exponential(0.5)", 2.0},
        ParseCase{"exp(0.1)", 10.0},
        ParseCase{"erlang(2,0.5)", 4.0},
        ParseCase{"geometric(0.2)", 5.0},
        ParseCase{"geo(0.5)", 2.0},
        ParseCase{"bernoulli(0.3)", 0.3}));

TEST(ParseDistributionErrors, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_distribution("nonsense(1)"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("uniform"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("uniform(1)"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("uniform(1,2,3)"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("uniform(a,b)"), std::invalid_argument);
  EXPECT_THROW(parse_distribution(""), std::invalid_argument);
}

TEST(ParseDistributionErrors, DescribeRoundTrips) {
  auto d = parse_distribution("exponential(0.25)");
  auto d2 = parse_distribution(d->describe());
  EXPECT_DOUBLE_EQ(d2->mean(), d->mean());
}

}  // namespace
}  // namespace vcpusim::stats
