#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace vcpusim::stats {
namespace {

TEST(ConfidenceInterval, UndefinedBelowTwoSamples) {
  Welford w;
  auto ci = confidence_interval(w);
  EXPECT_EQ(ci.count, 0u);
  EXPECT_EQ(ci.half_width, 0.0);
  EXPECT_FALSE(ci.converged(1.0));

  w.add(5.0);
  ci = confidence_interval(w);
  EXPECT_EQ(ci.count, 1u);
  EXPECT_FALSE(ci.converged(1.0));
}

TEST(ConfidenceInterval, KnownSmallSample) {
  // x = {1, 2, 3}: mean 2, s = 1, hw = t_{0.975,2} * 1/sqrt(3).
  Welford w;
  for (const double x : {1.0, 2.0, 3.0}) w.add(x);
  const auto ci = confidence_interval(w, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_NEAR(ci.half_width, 4.3027 / std::sqrt(3.0), 1e-3);
  EXPECT_NEAR(ci.lower(), 2.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.upper(), 2.0 + ci.half_width, 1e-12);
}

TEST(ConfidenceInterval, ZeroVarianceGivesZeroWidth) {
  Welford w;
  for (int i = 0; i < 10; ++i) w.add(7.0);
  const auto ci = confidence_interval(w);
  EXPECT_EQ(ci.half_width, 0.0);
  EXPECT_TRUE(ci.converged(0.001));
}

TEST(ConfidenceInterval, HigherConfidenceIsWider) {
  Welford w;
  for (const double x : {1.0, 2.0, 4.0, 8.0}) w.add(x);
  const auto ci95 = confidence_interval(w, 0.95);
  const auto ci99 = confidence_interval(w, 0.99);
  EXPECT_GT(ci99.half_width, ci95.half_width);
}

TEST(ConfidenceInterval, ShrinksWithSampleSize) {
  Rng rng(3);
  Welford small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  Rng rng2(3);
  for (int i = 0; i < 1000; ++i) large.add(rng2.uniform01());
  EXPECT_LT(confidence_interval(large).half_width,
            confidence_interval(small).half_width);
}

TEST(ConfidenceInterval, CoverageNearNominal) {
  // Property: the 95% CI for the mean of U(0,1) (true mean 0.5) should
  // cover 0.5 in roughly 95% of experiments.
  Rng master(99);
  int covered = 0;
  constexpr int kExperiments = 400;
  for (int e = 0; e < kExperiments; ++e) {
    Rng rng = master.split(static_cast<std::uint64_t>(e));
    Welford w;
    for (int i = 0; i < 30; ++i) w.add(rng.uniform01());
    const auto ci = confidence_interval(w, 0.95);
    if (ci.lower() <= 0.5 && 0.5 <= ci.upper()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kExperiments;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(ConfidenceInterval, ToStringMentionsParts) {
  Welford w;
  for (const double x : {1.0, 2.0, 3.0}) w.add(x);
  const auto s = confidence_interval(w).to_string();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("95"), std::string::npos);
}

}  // namespace
}  // namespace vcpusim::stats
