#include "stats/student_t.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vcpusim::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCaseHalf) {
  // I_{1/2}(a, a) = 1/2.
  for (const double a : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(regularized_incomplete_beta(a, a, 0.5), 0.5, 1e-10) << a;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_x(2, 2) = x^2 (3 - 2x).
  const double x = 0.3;
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, x), x * x * (3 - 2 * x),
              1e-10);
}

TEST(StudentT, CdfAtZeroIsHalf) {
  for (const double df : {1.0, 2.0, 5.0, 30.0, 100.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12) << df;
  }
}

TEST(StudentT, CdfSymmetry) {
  for (const double t : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(student_t_cdf(t, 7.0) + student_t_cdf(-t, 7.0), 1.0, 1e-10);
  }
}

TEST(StudentT, CdfDfOneIsCauchy) {
  // For df=1 (Cauchy): F(t) = 1/2 + atan(t)/pi.
  for (const double t : {-3.0, -1.0, 0.5, 2.0}) {
    EXPECT_NEAR(student_t_cdf(t, 1.0), 0.5 + std::atan(t) / M_PI, 1e-10) << t;
  }
}

TEST(StudentT, CdfMonotone) {
  double prev = 0.0;
  for (double t = -5.0; t <= 5.0; t += 0.25) {
    const double p = student_t_cdf(t, 4.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(StudentT, QuantileInvertsCdf) {
  for (const double df : {1.0, 3.0, 10.0, 50.0}) {
    for (const double p : {0.01, 0.1, 0.5, 0.9, 0.975, 0.999}) {
      const double t = student_t_quantile(p, df);
      EXPECT_NEAR(student_t_cdf(t, df), p, 1e-9) << df << " " << p;
    }
  }
}

// Critical values against standard tables (two-sided 95%).
struct CriticalCase {
  double df;
  double expected;
};

class StudentTCritical : public ::testing::TestWithParam<CriticalCase> {};

TEST_P(StudentTCritical, MatchesTable95) {
  const auto& c = GetParam();
  EXPECT_NEAR(student_t_critical(0.95, c.df), c.expected, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Table, StudentTCritical,
                         ::testing::Values(CriticalCase{1, 12.7062},
                                           CriticalCase{2, 4.3027},
                                           CriticalCase{4, 2.7764},
                                           CriticalCase{9, 2.2622},
                                           CriticalCase{29, 2.0452},
                                           CriticalCase{99, 1.9842}));

TEST(StudentT, Critical99) {
  EXPECT_NEAR(student_t_critical(0.99, 9.0), 3.2498, 5e-4);
  EXPECT_NEAR(student_t_critical(0.99, 29.0), 2.7564, 5e-4);
}

TEST(StudentT, LargeDfApproachesNormal) {
  // z_{0.975} = 1.959964
  EXPECT_NEAR(student_t_critical(0.95, 1e6), 1.95996, 1e-3);
}

TEST(StudentT, RejectsInvalidArguments) {
  EXPECT_THROW(student_t_cdf(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(student_t_critical(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(student_t_critical(1.0, 5.0), std::invalid_argument);
}

TEST(StudentT, MedianQuantileIsZero) {
  EXPECT_EQ(student_t_quantile(0.5, 7.0), 0.0);
}

}  // namespace
}  // namespace vcpusim::stats
