#include "stats/phase_profile.hpp"

#include <gtest/gtest.h>

#include <string>

#include "stats/metrics.hpp"

namespace vcpusim::stats {
namespace {

TEST(PhaseProfile, DisabledByDefaultAndTimerIsNoOp) {
  PhaseProfile profile;
  EXPECT_FALSE(profile.enabled());
  { ScopedPhaseTimer timer(&profile, Phase::kSettle); }
  { ScopedPhaseTimer timer(nullptr, Phase::kFire); }
  EXPECT_EQ(profile.calls(Phase::kSettle), 0U);
  EXPECT_EQ(profile.nanoseconds(Phase::kSettle), 0U);
}

TEST(PhaseProfile, EnabledTimerRecordsCalls) {
  PhaseProfile profile;
  profile.set_enabled(true);
  { ScopedPhaseTimer timer(&profile, Phase::kDecide); }
  { ScopedPhaseTimer timer(&profile, Phase::kDecide); }
  EXPECT_EQ(profile.calls(Phase::kDecide), 2U);
  EXPECT_EQ(profile.calls(Phase::kApply), 0U);
}

TEST(PhaseProfile, RecordAccumulates) {
  PhaseProfile profile;
  profile.record(Phase::kFire, 100);
  profile.record(Phase::kFire, 50);
  EXPECT_EQ(profile.calls(Phase::kFire), 2U);
  EXPECT_EQ(profile.nanoseconds(Phase::kFire), 150U);
  profile.reset();
  EXPECT_EQ(profile.calls(Phase::kFire), 0U);
}

TEST(PhaseProfile, MergeSumsSlots) {
  PhaseProfile a;
  PhaseProfile b;
  a.record(Phase::kSnapshot, 10);
  b.record(Phase::kSnapshot, 5);
  b.record(Phase::kApply, 7);
  a.merge(b);
  EXPECT_EQ(a.calls(Phase::kSnapshot), 2U);
  EXPECT_EQ(a.nanoseconds(Phase::kSnapshot), 15U);
  EXPECT_EQ(a.calls(Phase::kApply), 1U);
  EXPECT_EQ(a.nanoseconds(Phase::kApply), 7U);
}

TEST(PhaseProfile, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::kSettle), "settle");
  EXPECT_STREQ(phase_name(Phase::kFire), "fire");
  EXPECT_STREQ(phase_name(Phase::kSnapshot), "snapshot");
  EXPECT_STREQ(phase_name(Phase::kDecide), "decide");
  EXPECT_STREQ(phase_name(Phase::kApply), "apply");
}

TEST(PhaseProfile, ExportSkipsIdlePhases) {
  PhaseProfile profile;
  profile.record(Phase::kSettle, 42);
  MetricsRegistry registry;
  profile.export_to(registry);
  EXPECT_EQ(registry.counter_value("profile.settle.calls"), 1U);
  EXPECT_EQ(registry.counter_value("profile.settle.ns"), 42U);
  EXPECT_FALSE(registry.has("profile.fire.calls"));
  EXPECT_FALSE(registry.has("profile.apply.ns"));
}

TEST(PhaseProfile, ExportHonorsPrefix) {
  PhaseProfile profile;
  profile.record(Phase::kDecide, 9);
  MetricsRegistry registry;
  profile.export_to(registry, "bench.");
  EXPECT_EQ(registry.counter_value("bench.decide.ns"), 9U);
}

}  // namespace
}  // namespace vcpusim::stats
