#include "stats/replication.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace vcpusim::stats {
namespace {

TEST(Replication, ConstantMetricConvergesAtMinReplications) {
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.target_half_width = 0.01;
  const auto result = run_replications(
      {"m"}, [](std::size_t) { return std::vector<double>{1.0}; }, policy);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.replications, 5u);
  EXPECT_DOUBLE_EQ(result.metric("m").ci.mean, 1.0);
}

TEST(Replication, StopsAtMaxWhenNeverConverging) {
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 7;
  policy.target_half_width = 1e-12;
  std::size_t calls = 0;
  const auto result = run_replications(
      {"m"},
      [&calls](std::size_t rep) {
        ++calls;
        return std::vector<double>{rep % 2 == 0 ? 0.0 : 100.0};
      },
      policy);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.replications, 7u);
  EXPECT_EQ(calls, 7u);
}

TEST(Replication, AllMetricsMustConverge) {
  // Metric "noisy" needs more replications than "steady".
  ReplicationPolicy policy;
  policy.min_replications = 3;
  policy.max_replications = 200;
  policy.target_half_width = 0.15;
  Rng rng(1);
  const auto result = run_replications(
      {"steady", "noisy"},
      [&rng](std::size_t) {
        return std::vector<double>{0.5, rng.uniform01()};
      },
      policy);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.metric("steady").ci.converged(policy.target_half_width));
  EXPECT_TRUE(result.metric("noisy").ci.converged(policy.target_half_width));
  EXPECT_GT(result.replications, 3u);
}

TEST(Replication, ReplicationIndicesArePassedInOrder) {
  std::vector<std::size_t> seen;
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.target_half_width = 1.0;
  run_replications(
      {"m"},
      [&seen](std::size_t rep) {
        seen.push_back(rep);
        return std::vector<double>{0.0};
      },
      policy);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Replication, MeanAggregatesAcrossReplications) {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.max_replications = 4;
  policy.target_half_width = 1e9;
  const auto result = run_replications(
      {"m"},
      [](std::size_t rep) {
        return std::vector<double>{static_cast<double>(rep)};
      },
      policy);
  EXPECT_DOUBLE_EQ(result.metric("m").ci.mean, 1.5);  // mean of 0..3
  EXPECT_EQ(result.metric("m").samples.count(), 4u);
}

TEST(Replication, RejectsEmptyMetricList) {
  EXPECT_THROW(run_replications({}, [](std::size_t) {
                 return std::vector<double>{};
               }),
               std::invalid_argument);
}

TEST(Replication, RejectsWrongObservationCount) {
  EXPECT_THROW(run_replications({"a", "b"},
                                [](std::size_t) {
                                  return std::vector<double>{1.0};
                                }),
               std::runtime_error);
}

TEST(Replication, RejectsMinBelowTwo) {
  ReplicationPolicy policy;
  policy.min_replications = 1;
  EXPECT_THROW(run_replications({"m"},
                                [](std::size_t) {
                                  return std::vector<double>{1.0};
                                },
                                policy),
               std::invalid_argument);
}

TEST(Replication, UnknownMetricNameThrows) {
  const auto result = run_replications(
      {"m"}, [](std::size_t) { return std::vector<double>{1.0}; });
  EXPECT_THROW(result.metric("nope"), std::out_of_range);
}

}  // namespace
}  // namespace vcpusim::stats
