#include "stats/replication.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "stats/executor.hpp"
#include "stats/rng.hpp"

namespace vcpusim::stats {
namespace {

TEST(Replication, ConstantMetricConvergesAtMinReplications) {
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.target_half_width = 0.01;
  const auto result = run_replications(
      {"m"}, [](std::size_t) { return std::vector<double>{1.0}; }, policy);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.replications, 5u);
  EXPECT_DOUBLE_EQ(result.metric("m").ci.mean, 1.0);
}

TEST(Replication, StopsAtMaxWhenNeverConverging) {
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 7;
  policy.target_half_width = 1e-12;
  std::size_t calls = 0;
  const auto result = run_replications(
      {"m"},
      [&calls](std::size_t rep) {
        ++calls;
        return std::vector<double>{rep % 2 == 0 ? 0.0 : 100.0};
      },
      policy);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.replications, 7u);
  EXPECT_EQ(calls, 7u);
}

TEST(Replication, AllMetricsMustConverge) {
  // Metric "noisy" needs more replications than "steady".
  ReplicationPolicy policy;
  policy.min_replications = 3;
  policy.max_replications = 200;
  policy.target_half_width = 0.15;
  Rng rng(1);
  const auto result = run_replications(
      {"steady", "noisy"},
      [&rng](std::size_t) {
        return std::vector<double>{0.5, rng.uniform01()};
      },
      policy);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.metric("steady").ci.converged(policy.target_half_width));
  EXPECT_TRUE(result.metric("noisy").ci.converged(policy.target_half_width));
  EXPECT_GT(result.replications, 3u);
}

TEST(Replication, ReplicationIndicesArePassedInOrder) {
  std::vector<std::size_t> seen;
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.target_half_width = 1.0;
  run_replications(
      {"m"},
      [&seen](std::size_t rep) {
        seen.push_back(rep);
        return std::vector<double>{0.0};
      },
      policy);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Replication, MeanAggregatesAcrossReplications) {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.max_replications = 4;
  policy.target_half_width = 1e9;
  const auto result = run_replications(
      {"m"},
      [](std::size_t rep) {
        return std::vector<double>{static_cast<double>(rep)};
      },
      policy);
  EXPECT_DOUBLE_EQ(result.metric("m").ci.mean, 1.5);  // mean of 0..3
  EXPECT_EQ(result.metric("m").samples.count(), 4u);
}

TEST(Replication, RejectsEmptyMetricList) {
  EXPECT_THROW(run_replications({}, [](std::size_t) {
                 return std::vector<double>{};
               }),
               std::invalid_argument);
}

TEST(Replication, RejectsWrongObservationCount) {
  EXPECT_THROW(run_replications({"a", "b"},
                                [](std::size_t) {
                                  return std::vector<double>{1.0};
                                }),
               std::runtime_error);
}

TEST(Replication, RejectsMinBelowTwo) {
  ReplicationPolicy policy;
  policy.min_replications = 1;
  EXPECT_THROW(run_replications({"m"},
                                [](std::size_t) {
                                  return std::vector<double>{1.0};
                                },
                                policy),
               std::invalid_argument);
}

TEST(Replication, UnknownMetricNameThrows) {
  const auto result = run_replications(
      {"m"}, [](std::size_t) { return std::vector<double>{1.0}; });
  EXPECT_THROW(result.metric("nope"), std::out_of_range);
}

// ---------------------------------------------------------------------
// Parallel batch dispatch.
// ---------------------------------------------------------------------

/// A deterministic pure-function observation: each replication's value
/// depends only on its index (as real replications depend only on their
/// derived seed), so any dispatch order folds to the same estimates.
std::vector<double> indexed_observation(std::size_t rep) {
  Rng rng(0x9e3779b97f4a7c15ULL + rep);
  return {rng.uniform01(), 10.0 + rng.uniform01()};
}

void expect_bitwise_equal(const ReplicationResult& a,
                          const ReplicationResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].name, b.metrics[m].name);
    EXPECT_EQ(a.metrics[m].ci.mean, b.metrics[m].ci.mean);
    EXPECT_EQ(a.metrics[m].ci.half_width, b.metrics[m].ci.half_width);
    EXPECT_EQ(a.metrics[m].ci.confidence, b.metrics[m].ci.confidence);
    EXPECT_EQ(a.metrics[m].samples.count(), b.metrics[m].samples.count());
    EXPECT_EQ(a.metrics[m].samples.mean(), b.metrics[m].samples.mean());
    EXPECT_EQ(a.metrics[m].samples.sample_variance(),
              b.metrics[m].samples.sample_variance());
  }
}

TEST(Replication, ParallelJobsProduceBitIdenticalResults) {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  policy.max_replications = 37;
  policy.target_half_width = 0.08;  // converges somewhere mid-stream
  const auto sequential =
      run_replications({"u", "shifted"}, indexed_observation, policy);
  ASSERT_GT(sequential.replications, policy.min_replications);
  for (const std::size_t jobs : {2u, 3u, 8u, 16u}) {
    const auto parallel = run_replications({"u", "shifted"},
                                           indexed_observation, policy, jobs);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_bitwise_equal(sequential, parallel);
  }
}

TEST(Replication, ParallelNeverCallsBeyondMaxReplications) {
  // The final batch is truncated: with max = 10 and jobs = 4 the engine
  // must dispatch 4 + 4 + 2, never touching replication index 10+.
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 10;
  policy.target_half_width = 1e-12;  // never converges
  std::mutex mu;
  std::vector<std::size_t> seen;
  const auto result = run_replications(
      {"m"},
      [&](std::size_t rep) -> std::vector<double> {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(rep);
        return {rep % 2 == 0 ? 0.0 : 100.0};
      },
      policy, 4);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.replications, 10u);
  EXPECT_EQ(seen.size(), 10u);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(Replication, ParallelStopsAtSequentialConvergencePoint) {
  // Speculative batch execution may *call* fn past the stopping index,
  // but the folded result must stop exactly where jobs = 1 stops and
  // discard the speculated observations.
  ReplicationPolicy policy;
  policy.min_replications = 3;
  policy.max_replications = 100;
  policy.target_half_width = 0.2;
  const auto sequential = run_replications({"u"}, [](std::size_t rep) {
    return std::vector<double>{indexed_observation(rep)[0]};
  }, policy);
  ASSERT_TRUE(sequential.converged);
  ASSERT_LT(sequential.replications, policy.max_replications);

  std::atomic<std::size_t> calls{0};
  const auto parallel = run_replications(
      {"u"},
      [&](std::size_t rep) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return std::vector<double>{indexed_observation(rep)[0]};
      },
      policy, 8);
  expect_bitwise_equal(sequential, parallel);
  // Speculation is bounded by one batch past the stopping point.
  EXPECT_LT(calls.load(), sequential.replications + 8);
}

TEST(Replication, ExecutorOverloadSharesOnePool) {
  ParallelExecutor executor(4);
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.max_replications = 20;
  policy.target_half_width = 1e9;
  const auto a = run_replications({"u", "shifted"}, indexed_observation,
                                  policy, executor);
  const auto b = run_replications({"u", "shifted"}, indexed_observation,
                                  policy, 1);
  expect_bitwise_equal(a, b);
}

TEST(Replication, ParallelPropagatesReplicationExceptions) {
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 40;
  policy.target_half_width = 1e-12;
  EXPECT_THROW(run_replications(
                   {"m"},
                   [](std::size_t rep) -> std::vector<double> {
                     if (rep == 9) throw std::runtime_error("replication died");
                     return {rep % 2 == 0 ? 0.0 : 100.0};  // never converges
                   },
                   policy, 4),
               std::runtime_error);
}

}  // namespace
}  // namespace vcpusim::stats
