#include "stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vcpusim::stats {
namespace {

TEST(Welford, EmptyAccumulator) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.sample_variance(), 0.0);
  EXPECT_EQ(w.population_variance(), 0.0);
}

TEST(Welford, SingleObservation) {
  Welford w;
  w.add(3.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.mean(), 3.0);
  EXPECT_EQ(w.sample_variance(), 0.0);
  EXPECT_EQ(w.min(), 3.0);
  EXPECT_EQ(w.max(), 3.0);
}

TEST(Welford, KnownSmallSample) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.population_variance(), 4.0);
  EXPECT_NEAR(w.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(w.min(), 2.0);
  EXPECT_EQ(w.max(), 9.0);
}

TEST(Welford, MatchesNaiveTwoPass) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(std::sin(i) * 100.0 + 7.0);
  Welford w;
  for (const double x : xs) w.add(x);
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.sample_variance(), var, 1e-6);
}

TEST(Welford, NumericallyStableForLargeOffset) {
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  Welford w;
  const double offset = 1e9;
  for (const double x : {offset + 1, offset + 2, offset + 3}) w.add(x);
  EXPECT_NEAR(w.sample_variance(), 1.0, 1e-6);
}

TEST(Welford, MergeEqualsSequential) {
  Welford a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::cos(i) * 10;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = std::cos(i) * 10;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.sample_variance(), all.sample_variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);

  Welford c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.mean(), mean);
}

TEST(Welford, ResetClears) {
  Welford w;
  w.add(5.0);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
}

TEST(Welford, StddevIsSqrtOfVariance) {
  Welford w;
  for (const double x : {1.0, 3.0, 5.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.stddev(), std::sqrt(w.sample_variance()));
}

}  // namespace
}  // namespace vcpusim::stats
