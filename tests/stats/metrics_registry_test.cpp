#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testing/json.hpp"

namespace vcpusim::stats {
namespace {

using vcpusim::testing::parse_json;

TEST(MetricsRegistry, CounterFindOrCreateAccumulates) {
  MetricsRegistry registry;
  registry.counter("sim.events").add(3);
  registry.counter("sim.events").add(4);
  EXPECT_EQ(registry.counter_value("sim.events"), 7U);
  EXPECT_EQ(registry.size(), 1U);
}

TEST(MetricsRegistry, CounterDefaultIncrementIsOne) {
  MetricsRegistry registry;
  registry.counter("c").add();
  registry.counter("c").add();
  EXPECT_EQ(registry.counter_value("c"), 2U);
}

TEST(MetricsRegistry, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  registry.gauge("executor.jobs").set(4.0);
  registry.gauge("executor.jobs").set(8.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("executor.jobs"), 8.0);
}

TEST(MetricsRegistry, SummaryIsWelfordBacked) {
  MetricsRegistry registry;
  auto& s = registry.summary("latency");
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(registry.summary_values("latency").count(), 2U);
  EXPECT_DOUBLE_EQ(registry.summary_values("latency").mean(), 2.0);
}

TEST(MetricsRegistry, HistogramParamsFixedByFirstCall) {
  MetricsRegistry registry;
  auto& h = registry.histogram("h", 0.0, 10.0, 5);
  h.add(1.0);
  // Later lookups ignore their lo/hi/buckets arguments.
  auto& again = registry.histogram("h", -100.0, 100.0, 50);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(h.bucket_count(), 5U);
}

TEST(MetricsRegistry, KindConflictThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.summary("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x", 0, 1, 2), std::invalid_argument);
}

TEST(MetricsRegistry, MissingNameAccessorsThrow) {
  MetricsRegistry registry;
  registry.gauge("g");
  EXPECT_THROW(registry.counter_value("absent"), std::out_of_range);
  EXPECT_THROW(registry.gauge_value("absent"), std::out_of_range);
  EXPECT_THROW(registry.summary_values("absent"), std::out_of_range);
  // Wrong kind is also out_of_range, not a silent zero.
  EXPECT_THROW(registry.counter_value("g"), std::out_of_range);
}

TEST(MetricsRegistry, HasAndClear) {
  MetricsRegistry registry;
  registry.counter("a");
  EXPECT_TRUE(registry.has("a"));
  EXPECT_FALSE(registry.has("b"));
  registry.clear();
  EXPECT_FALSE(registry.has("a"));
  EXPECT_EQ(registry.size(), 0U);
}

TEST(MetricsRegistry, JsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.counter("sim.events").add(42);
  registry.gauge("executor.jobs").set(2.5);
  registry.summary("metric.throughput").add(1.0);
  registry.summary("metric.throughput").add(2.0);
  registry.histogram("hist", 0.0, 4.0, 4).add(1.5);

  const auto doc = parse_json(registry.to_json());
  EXPECT_EQ(doc.at("counters").at("sim.events").number, 42.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("executor.jobs").number, 2.5);
  const auto& summary = doc.at("summaries").at("metric.throughput");
  EXPECT_EQ(summary.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(summary.at("mean").number, 1.5);
  EXPECT_TRUE(summary.has("stddev"));
  EXPECT_TRUE(summary.has("min"));
  EXPECT_TRUE(summary.has("max"));
  const auto& hist = doc.at("histograms").at("hist");
  EXPECT_EQ(hist.at("counts").array.size(), 4U);
  EXPECT_EQ(hist.at("counts").at(1).number, 1.0);
}

TEST(MetricsRegistry, EmptyRegistryRendersValidJson) {
  MetricsRegistry registry;
  const auto doc = parse_json(registry.to_json());
  EXPECT_TRUE(doc.at("counters").is_object());
  EXPECT_TRUE(doc.at("counters").object.empty());
  EXPECT_TRUE(doc.at("histograms").object.empty());
}

TEST(MetricsRegistry, JsonIsDeterministicAndSorted) {
  MetricsRegistry a;
  MetricsRegistry b;
  // Insert in opposite orders; rendering must not depend on it.
  a.counter("zeta").add(1);
  a.counter("alpha").add(2);
  b.counter("alpha").add(2);
  b.counter("zeta").add(1);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_LT(a.to_json().find("alpha"), a.to_json().find("zeta"));
}

TEST(MetricsRegistry, JsonEscapesNamesAndNonFiniteValues) {
  MetricsRegistry registry;
  registry.gauge("quote\"back\\slash").set(1.0);
  registry.gauge("inf").set(1.0 / 0.0);
  const auto doc = parse_json(registry.to_json());
  EXPECT_TRUE(doc.at("gauges").has("quote\"back\\slash"));
  EXPECT_TRUE(doc.at("gauges").at("inf").is_null());
}

}  // namespace
}  // namespace vcpusim::stats
