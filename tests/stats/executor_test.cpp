#include "stats/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vcpusim::stats {
namespace {

TEST(ParallelExecutor, ResolveJobsZeroMeansHardwareConcurrency) {
  const std::size_t resolved = ParallelExecutor::resolve_jobs(0);
  EXPECT_GE(resolved, 1u);
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(resolved, hw);
  }
  EXPECT_EQ(ParallelExecutor::resolve_jobs(3), 3u);
  EXPECT_EQ(ParallelExecutor::resolve_jobs(1), 1u);
}

TEST(ParallelExecutor, ReportsResolvedJobCount) {
  ParallelExecutor one(1);
  EXPECT_EQ(one.jobs(), 1u);
  ParallelExecutor four(4);
  EXPECT_EQ(four.jobs(), 4u);
  ParallelExecutor automatic(0);
  EXPECT_GE(automatic.jobs(), 1u);
}

TEST(ParallelExecutor, RunsEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    ParallelExecutor executor(jobs);
    constexpr std::size_t kCount = 257;  // not a multiple of any pool size
    std::vector<std::atomic<int>> hits(kCount);
    executor.run_indexed(kCount, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelExecutor, ZeroCountIsNoOp) {
  ParallelExecutor executor(4);
  std::atomic<int> calls{0};
  executor.run_indexed(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelExecutor, PoolIsReusableAcrossBatches) {
  ParallelExecutor executor(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    executor.run_indexed(10, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 55u) << "round " << round;
  }
}

TEST(ParallelExecutor, TasksActuallyRunConcurrently) {
  // Two tasks that each wait for the other prove two lanes are live;
  // with jobs == 2 this would deadlock if the pool ran sequentially
  // (bounded by the flags' timeout-free handshake, so keep it simple:
  // both spin until they have seen the other side start).
  ParallelExecutor executor(2);
  std::atomic<int> started{0};
  executor.run_indexed(2, [&](std::size_t) {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
  });
  EXPECT_EQ(started.load(), 2);
}

TEST(ParallelExecutor, RethrowsLowestIndexException) {
  ParallelExecutor executor(4);
  try {
    executor.run_indexed(16, [](std::size_t i) {
      if (i == 3 || i == 11) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ParallelExecutor, BatchDrainsCompletelyEvenOnException) {
  // Every non-throwing index still runs; the failure of one task must
  // not silently skip work (callers rely on index-owned slots being
  // fully populated or an exception propagating).
  ParallelExecutor executor(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(executor.run_indexed(64,
                                    [&](std::size_t i) {
                                      hits[i].fetch_add(1);
                                      if (i == 0) throw std::logic_error("x");
                                    }),
               std::logic_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelExecutor, InlinePathForSingleJobPreservesOrder) {
  // jobs == 1 runs inline on the caller: strictly ascending indices on
  // the calling thread (sequential semantics that the replication
  // engine's determinism argument builds on).
  ParallelExecutor executor(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  executor.run_indexed(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ParallelExecutor, DistributesWorkAcrossThreads) {
  ParallelExecutor executor(4);
  std::mutex mu;
  std::set<std::thread::id> threads;
  executor.run_indexed(512, [&](std::size_t) {
    // A touch of work so a single lane cannot race through the whole
    // range before the others wake up.
    volatile double x = 0;
    for (int k = 0; k < 1000; ++k) x = x + k;
    std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_GE(threads.size(), 1u);
  EXPECT_LE(threads.size(), 4u);
}

}  // namespace
}  // namespace vcpusim::stats
