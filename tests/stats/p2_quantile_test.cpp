#include "stats/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace vcpusim::stats {
namespace {

TEST(P2Quantile, RejectsInvalidOrder) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, SmallSamplesAreExact) {
  P2Quantile p50(0.5);
  p50.add(3.0);
  EXPECT_DOUBLE_EQ(p50.value(), 3.0);
  p50.add(1.0);
  p50.add(2.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);  // median of {1,2,3}
  EXPECT_EQ(p50.count(), 3u);
}

TEST(P2Quantile, MedianOfUniform) {
  Rng rng(3);
  P2Quantile p50(0.5);
  for (int i = 0; i < 100000; ++i) p50.add(rng.uniform01());
  EXPECT_NEAR(p50.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailQuantilesOfUniform) {
  Rng rng(5);
  P2Quantile p95(0.95);
  P2Quantile p99(0.99);
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform01();
    p95.add(u);
    p99.add(u);
  }
  EXPECT_NEAR(p95.value(), 0.95, 0.01);
  EXPECT_NEAR(p99.value(), 0.99, 0.005);
}

TEST(P2Quantile, ExponentialQuantileMatchesAnalytic) {
  // q-quantile of Exp(lambda) = -ln(1-q)/lambda.
  Rng rng(7);
  P2Quantile p90(0.9);
  const double lambda = 0.5;
  for (int i = 0; i < 200000; ++i) {
    p90.add(-std::log(1.0 - rng.uniform01()) / lambda);
  }
  EXPECT_NEAR(p90.value(), -std::log(0.1) / lambda, 0.1);
}

TEST(P2Quantile, AgreesWithExactQuantileOnModerateSample) {
  Rng rng(9);
  std::vector<double> xs;
  P2Quantile p75(0.75);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform01() * rng.uniform01();  // skewed
    xs.push_back(x);
    p75.add(x);
  }
  std::sort(xs.begin(), xs.end());
  const double exact = xs[static_cast<std::size_t>(0.75 * xs.size())];
  EXPECT_NEAR(p75.value(), exact, 0.02);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile p95(0.95);
  for (int i = 0; i < 1000; ++i) p95.add(42.0);
  EXPECT_DOUBLE_EQ(p95.value(), 42.0);
}

}  // namespace
}  // namespace vcpusim::stats
