#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace vcpusim::stats {
namespace {

TEST(Histogram, BucketsPartitionRange) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, CountsLandInCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FractionsSumToOneWithinRange) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform01());
  double sum = 0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) sum += h.fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    EXPECT_NEAR(h.fraction(b), 0.1, 0.02);
  }
}

TEST(Histogram, QuantileOfUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto s = h.render(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("[0, 1)"), std::string::npos);
}

TEST(Histogram, OutOfRangeBucketAccessThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), std::out_of_range);
  EXPECT_THROW(h.bucket_lo(2), std::out_of_range);
}

}  // namespace
}  // namespace vcpusim::stats
