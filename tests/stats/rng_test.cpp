#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace vcpusim::stats {
namespace {

TEST(SplitMix64, IsDeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, ZeroSeedProducesNonZeroStream) {
  SplitMix64 sm(0);
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) {
    if (sm() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsProduceDistinctStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, -1);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitSameIdFromSameStateIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.split(9);
  Rng cb = b.split(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, AntitheticUniform01PairsMirrorAroundOne) {
  Rng primal(7);
  Rng mirror(7);
  mirror.set_antithetic(true);
  for (int i = 0; i < 1000; ++i) {
    const double u = primal.uniform01();
    const double v = mirror.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    EXPECT_NEAR(u + v, 1.0, 0x1.0p-52);
  }
}

TEST(Rng, AntitheticUniform01StaysInHalfOpenRange) {
  // 1 - 0 = 1 would leave [0,1); the mirror must clamp it back inside.
  Rng rng(11);
  rng.set_antithetic(true);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, AntitheticUniformIntPairsSumToLoPlusHi) {
  Rng primal(13);
  Rng mirror(13);
  mirror.set_antithetic(true);
  for (int i = 0; i < 1000; ++i) {
    const auto x = primal.uniform_int(-5, 9);
    const auto y = mirror.uniform_int(-5, 9);
    EXPECT_EQ(x + y, -5 + 9);
  }
}

TEST(Rng, AntitheticLeavesRawStreamUntouched) {
  // The mirror acts on the variate transforms only; the underlying
  // 64-bit sequence — and so the number of raw draws a simulation
  // consumes — is identical to the primal run's.
  Rng primal(21);
  Rng mirror(21);
  mirror.set_antithetic(true);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(primal(), mirror());
}

TEST(Rng, AntitheticFlagIsQueryableAndReversible) {
  Rng rng(3);
  EXPECT_FALSE(rng.antithetic());
  rng.set_antithetic(true);
  EXPECT_TRUE(rng.antithetic());
  rng.set_antithetic(false);
  Rng reference(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform01(), reference.uniform01());
  }
}

}  // namespace
}  // namespace vcpusim::stats
