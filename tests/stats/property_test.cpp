// Property-based tests of the statistics primitives: randomized inputs
// (seeded, reproducible) checked against brute-force reference
// computations. Complements the example-based unit tests in
// welford_test.cpp / p2_quantile_test.cpp / batch_means_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/batch_means.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/welford.hpp"
#include "testing/helpers.hpp"

namespace vcpusim::stats {
namespace {

using vcpusim::testing::PropertyRng;

std::vector<double> random_samples(PropertyRng& rng, std::size_t n,
                                   double lo, double hi) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(lo, hi);
  return xs;
}

double brute_mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double brute_sample_variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = brute_mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

TEST(WelfordProperty, MatchesBruteForceOverRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    PropertyRng rng(seed);
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 400));
    // Mix scales so catastrophic-cancellation bugs would show.
    const double scale = rng.chance(0.5) ? 1.0 : 1e6;
    const auto xs = random_samples(rng, n, -scale, scale);

    Welford w;
    for (const double x : xs) w.add(x);

    EXPECT_EQ(w.count(), n) << "seed " << seed;
    EXPECT_NEAR(w.mean(), brute_mean(xs), 1e-9 * scale) << "seed " << seed;
    EXPECT_NEAR(w.sample_variance(), brute_sample_variance(xs),
                1e-7 * scale * scale)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(w.min(), *std::min_element(xs.begin(), xs.end()))
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(w.max(), *std::max_element(xs.begin(), xs.end()))
        << "seed " << seed;
  }
}

TEST(WelfordProperty, MergeEquivalentToSingleAccumulator) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    PropertyRng rng(100 + seed);
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 300));
    const auto xs = random_samples(rng, n, -10.0, 10.0);
    const auto split =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n)));

    Welford whole;
    for (const double x : xs) whole.add(x);

    Welford left;
    Welford right;
    for (std::size_t i = 0; i < n; ++i) (i < split ? left : right).add(xs[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count()) << "seed " << seed;
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12) << "seed " << seed;
    EXPECT_NEAR(left.sample_variance(), whole.sample_variance(), 1e-9)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(left.min(), whole.min()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(left.max(), whole.max()) << "seed " << seed;
  }
}

TEST(WelfordProperty, MergeOrderInvariance) {
  // Partition a sample into k chunks and merge them in two different
  // orders: the statistics must agree (to rounding) — the property the
  // parallel replication fold relies on.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PropertyRng rng(200 + seed);
    const int k = rng.uniform_int(2, 8);
    std::vector<Welford> parts(static_cast<std::size_t>(k));
    for (auto& part : parts) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(1, 50));
      for (std::size_t i = 0; i < n; ++i) part.add(rng.normal(5.0, 2.0));
    }

    Welford forward;
    for (const auto& part : parts) forward.merge(part);
    Welford backward;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      backward.merge(*it);
    }

    EXPECT_EQ(forward.count(), backward.count()) << "seed " << seed;
    EXPECT_NEAR(forward.mean(), backward.mean(), 1e-12) << "seed " << seed;
    EXPECT_NEAR(forward.sample_variance(), backward.sample_variance(), 1e-9)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(forward.min(), backward.min()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(forward.max(), backward.max()) << "seed " << seed;
  }
}

TEST(WelfordProperty, MergingEmptyIsIdentity) {
  PropertyRng rng(7);
  Welford w;
  for (int i = 0; i < 50; ++i) w.add(rng.uniform(0.0, 1.0));
  const double mean = w.mean();
  const double var = w.sample_variance();
  w.merge(Welford{});
  EXPECT_EQ(w.count(), 50U);
  EXPECT_DOUBLE_EQ(w.mean(), mean);
  EXPECT_DOUBLE_EQ(w.sample_variance(), var);

  Welford empty;
  empty.merge(w);
  EXPECT_EQ(empty.count(), 50U);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(P2QuantileProperty, SmallSamplesStayWithinObservedRange) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    PropertyRng rng(300 + seed);
    P2Quantile p2(rng.uniform(0.05, 0.95));
    double lo = 1e300;
    double hi = -1e300;
    const int n = rng.uniform_int(1, 4);
    for (int i = 0; i < n; ++i) {
      const double x = rng.uniform(-50.0, 50.0);
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      p2.add(x);
    }
    EXPECT_GE(p2.value(), lo) << "seed " << seed;
    EXPECT_LE(p2.value(), hi) << "seed " << seed;
  }
}

TEST(P2QuantileProperty, TracksExactQuantileOnUniformStreams) {
  for (const double q : {0.25, 0.5, 0.9, 0.95}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      PropertyRng rng(400 + seed);
      const auto xs = random_samples(rng, 3000, 0.0, 1.0);
      P2Quantile p2(q);
      for (const double x : xs) p2.add(x);
      // The P² estimate converges to the exact sample quantile; on
      // uniform streams of this length the error stays small.
      EXPECT_NEAR(p2.value(), exact_quantile(xs, q), 0.05)
          << "q=" << q << " seed " << seed;
      EXPECT_EQ(p2.count(), xs.size());
    }
  }
}

TEST(BatchMeansProperty, MatchesBruteForceBatching) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PropertyRng rng(500 + seed);
    const auto batch = static_cast<std::size_t>(rng.uniform_int(2, 20));
    const auto warmup = static_cast<std::size_t>(rng.uniform_int(0, 30));
    const auto n = static_cast<std::size_t>(rng.uniform_int(50, 400));
    const auto xs = random_samples(rng, n, -5.0, 5.0);

    BatchMeans bm(batch, warmup);
    for (const double x : xs) bm.add(x);

    // Brute-force reference: drop warmup, cut complete batches, average.
    Welford reference;
    std::size_t i = warmup;
    while (i + batch <= n) {
      double sum = 0.0;
      for (std::size_t j = 0; j < batch; ++j) sum += xs[i + j];
      reference.add(sum / static_cast<double>(batch));
      i += batch;
    }

    EXPECT_EQ(bm.observations(), n) << "seed " << seed;
    EXPECT_EQ(bm.batches(), reference.count()) << "seed " << seed;
    if (reference.count() > 0) {
      EXPECT_NEAR(bm.mean(), reference.mean(), 1e-12) << "seed " << seed;
    }
    if (reference.count() >= 2) {
      const auto expected = confidence_interval(reference, 0.95);
      const auto actual = bm.interval(0.95);
      EXPECT_NEAR(actual.mean, expected.mean, 1e-12) << "seed " << seed;
      EXPECT_NEAR(actual.half_width, expected.half_width, 1e-12)
          << "seed " << seed;
    }
  }
}

TEST(HistogramProperty, BucketAssignmentMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PropertyRng rng(600 + seed);
    const double lo = rng.uniform(-10.0, 0.0);
    const double hi = lo + rng.uniform(1.0, 20.0);
    const auto buckets = static_cast<std::size_t>(rng.uniform_int(1, 16));
    Histogram h(lo, hi, buckets);

    std::vector<std::size_t> reference(buckets, 0);
    std::size_t under = 0;
    std::size_t over = 0;
    const auto n = static_cast<std::size_t>(rng.uniform_int(10, 500));
    const double width = (hi - lo) / static_cast<double>(buckets);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.uniform(lo - 5.0, hi + 5.0);
      h.add(x);
      if (x < lo) {
        ++under;
      } else if (x >= hi) {
        ++over;
      } else {
        auto b = static_cast<std::size_t>((x - lo) / width);
        if (b >= buckets) b = buckets - 1;  // boundary rounding
        ++reference[b];
      }
    }

    EXPECT_EQ(h.total(), n) << "seed " << seed;
    EXPECT_EQ(h.underflow(), under) << "seed " << seed;
    EXPECT_EQ(h.overflow(), over) << "seed " << seed;
    std::size_t sum = h.underflow() + h.overflow();
    for (std::size_t b = 0; b < buckets; ++b) {
      EXPECT_EQ(h.count(b), reference[b]) << "seed " << seed << " bucket " << b;
      sum += h.count(b);
    }
    EXPECT_EQ(sum, n) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vcpusim::stats
