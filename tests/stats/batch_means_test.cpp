#include "stats/batch_means.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace vcpusim::stats {
namespace {

TEST(BatchMeans, RejectsZeroBatchLength) {
  EXPECT_THROW(BatchMeans(0), std::invalid_argument);
}

TEST(BatchMeans, BatchesFormAtBatchLength) {
  BatchMeans bm(10);
  for (int i = 0; i < 25; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batches(), 2u);       // 5 observations still pending
  EXPECT_EQ(bm.observations(), 25u);
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
}

TEST(BatchMeans, WarmupObservationsDiscarded) {
  BatchMeans bm(5, /*warmup=*/10);
  // Transient: ten 100s, then steady 1s.
  for (int i = 0; i < 10; ++i) bm.add(100.0);
  for (int i = 0; i < 20; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batches(), 4u);
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
}

TEST(BatchMeans, BatchMeanValuesAreAveraged) {
  BatchMeans bm(2);
  bm.add(1.0);
  bm.add(3.0);  // batch mean 2
  bm.add(5.0);
  bm.add(7.0);  // batch mean 6
  EXPECT_EQ(bm.batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(BatchMeans, IntervalCoversIidMean) {
  Rng rng(5);
  BatchMeans bm(100, 200);
  for (int i = 0; i < 20000; ++i) bm.add(rng.uniform01());
  const auto ci = bm.interval(0.95);
  EXPECT_GT(ci.count, 100u);
  EXPECT_NEAR(ci.mean, 0.5, 0.01);
  EXPECT_LE(ci.lower(), 0.5);
  EXPECT_GE(ci.upper(), 0.5);
}

TEST(BatchMeans, AutocorrelationNearZeroForIid) {
  Rng rng(7);
  BatchMeans bm(50);
  for (int i = 0; i < 50000; ++i) bm.add(rng.uniform01());
  EXPECT_LT(std::fabs(bm.lag1_autocorrelation()), 0.12);
}

TEST(BatchMeans, AutocorrelationDetectsCorrelatedProcess) {
  // AR(1)-like drift: x_{t+1} = 0.999 x_t + noise. Tiny batches keep the
  // batch means heavily correlated.
  Rng rng(9);
  BatchMeans bm(5);
  double x = 0.0;
  for (int i = 0; i < 50000; ++i) {
    x = 0.999 * x + (rng.uniform01() - 0.5);
    bm.add(x);
  }
  EXPECT_GT(bm.lag1_autocorrelation(), 0.5);
}

TEST(BatchMeans, FewBatchesGiveNoAutocorrelation) {
  BatchMeans bm(5);
  for (int i = 0; i < 10; ++i) bm.add(static_cast<double>(i));
  EXPECT_EQ(bm.batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.lag1_autocorrelation(), 0.0);
}

}  // namespace
}  // namespace vcpusim::stats
