// Golden-trace equivalence for the shipped scheduling algorithms.
//
// The scheduling stack (bridge + algorithms) is refactor-hot: the
// layered rework must keep every algorithm's decisions — and therefore
// the full event trajectory and the RNG stream — bit-identical. These
// tests pin each algorithm's trajectory digest and reward estimates on
// a Figure-8-style system (three VMs, 2+1+1 VCPUs, sync ratio 1:5),
// with and without the spinlock extension, against fixtures recorded
// under tests/testing/golden/.
//
// Each fixture row is checked four ways:
//   * the event trajectory with incremental enabling ON,
//   * the identical trajectory with incremental enabling OFF,
//   * reward estimates with jobs = 1,
//   * bit-identical reward estimates with jobs = 8.
//
// Regenerate (only when a trajectory change is intended) with:
//   VCPUSIM_UPDATE_GOLDEN=1 ./integration_tests --gtest_filter='GoldenTrace.*'
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "san/simulator.hpp"
#include "sched/registry.hpp"
#include "trace/event_log.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim {
namespace {

constexpr const char* kFixturePath =
    VCPUSIM_TEST_DIR "/testing/golden/scheduler_traces.txt";
constexpr san::Time kTraceEndTime = 400.0;
constexpr std::uint64_t kTraceSeed = 20260805;
constexpr san::Time kRewardEndTime = 600.0;
constexpr san::Time kRewardWarmup = 100.0;
constexpr std::size_t kRewardReplications = 4;

vm::SystemConfig fig8_config(bool spinlock) {
  auto cfg = vm::make_symmetric_config(2, {2, 1, 1}, 5);
  if (spinlock) {
    for (auto& vmc : cfg.vms) vmc.spinlock.enabled = true;
  }
  return cfg;
}

/// FNV-1a over the full completion sequence: (time bits, qualified
/// activity name, case index) per event.
std::uint64_t trace_digest(const trace::EventLog& log) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  for (const auto& e : log.entries()) {
    mix(&e.time, sizeof(e.time));
    mix(e.activity.data(), e.activity.size());
    mix(&e.case_index, sizeof(e.case_index));
  }
  return h;
}

struct TraceRun {
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
};

TraceRun run_trace(const std::string& algorithm, bool spinlock,
                   bool incremental) {
  auto system =
      vm::build_system(fig8_config(spinlock), sched::make_factory(algorithm)());
  san::SimulatorConfig config;
  config.end_time = kTraceEndTime;
  config.seed = kTraceSeed;
  config.incremental_enabling = incremental;
  san::Simulator sim(config);
  sim.set_model(*system->model);
  trace::EventLog log;
  sim.add_observer(log);
  const auto stats = sim.run();
  return TraceRun{stats.events, trace_digest(log)};
}

std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Reward estimates (hexfloat, bit-exact) of the four headline metrics.
std::vector<std::string> run_rewards(const std::string& algorithm,
                                     bool spinlock, std::size_t jobs) {
  exp::RunSpec spec;
  spec.system = fig8_config(spinlock);
  spec.scheduler = sched::make_factory(algorithm);
  spec.end_time = kRewardEndTime;
  spec.warmup = kRewardWarmup;
  spec.jobs = jobs;
  spec.policy.min_replications = kRewardReplications;
  spec.policy.max_replications = kRewardReplications;
  spec.policy.target_half_width = 1e-12;
  const auto result = exp::run_point(
      spec, {{exp::MetricKind::kMeanVcpuAvailability, -1, "avail"},
             {exp::MetricKind::kPcpuUtilization, -1, "pcpu"},
             {exp::MetricKind::kMeanVcpuUtilization, -1, "vcpu"},
             {exp::MetricKind::kThroughput, -1, "tput"}});
  std::vector<std::string> out;
  out.reserve(result.metrics.size());
  for (const auto& m : result.metrics) out.push_back(hexfloat(m.ci.mean));
  return out;
}

struct GoldenRow {
  std::uint64_t events = 0;
  std::string digest;
  std::vector<std::string> rewards;
};

std::string row_key(const std::string& algorithm, bool spinlock) {
  return algorithm + (spinlock ? "|spinlock" : "|plain");
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

GoldenRow compute_row(const std::string& algorithm, bool spinlock) {
  GoldenRow row;
  const auto trace = run_trace(algorithm, spinlock, /*incremental=*/true);
  row.events = trace.events;
  row.digest = hex64(trace.digest);
  row.rewards = run_rewards(algorithm, spinlock, /*jobs=*/1);
  return row;
}

std::map<std::string, GoldenRow> load_fixture() {
  std::map<std::string, GoldenRow> rows;
  std::ifstream in(kFixturePath);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string key, variant, events, digest, rewards;
    if (!std::getline(is, key, '|') || !std::getline(is, variant, '|') ||
        !std::getline(is, events, '|') || !std::getline(is, digest, '|') ||
        !std::getline(is, rewards)) {
      ADD_FAILURE() << "malformed fixture line: " << line;
      continue;
    }
    GoldenRow row;
    row.events = std::strtoull(events.c_str(), nullptr, 10);
    row.digest = digest;
    std::istringstream rs(rewards);
    std::string r;
    while (std::getline(rs, r, ',')) row.rewards.push_back(r);
    rows[key + "|" + variant] = std::move(row);
  }
  return rows;
}

void write_fixture(const std::map<std::string, GoldenRow>& rows) {
  std::ofstream out(kFixturePath);
  ASSERT_TRUE(out) << "cannot write " << kFixturePath;
  out << "# Golden scheduler trajectories — regenerate with\n"
         "#   VCPUSIM_UPDATE_GOLDEN=1 ./integration_tests "
         "--gtest_filter='GoldenTrace.*'\n"
         "# algorithm|variant|events|trace_digest|reward_means(hexfloat)\n";
  for (const auto& [key, row] : rows) {
    out << key << "|" << row.events << "|" << row.digest << "|";
    for (std::size_t i = 0; i < row.rewards.size(); ++i) {
      out << (i ? "," : "") << row.rewards[i];
    }
    out << "\n";
  }
}

bool update_mode() {
  const char* env = std::getenv("VCPUSIM_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenTrace, AllAlgorithmsMatchRecordedTrajectories) {
  std::map<std::string, GoldenRow> fixture;
  const bool update = update_mode();
  if (!update) {
    fixture = load_fixture();
    ASSERT_FALSE(fixture.empty())
        << "missing fixture " << kFixturePath
        << " — regenerate with VCPUSIM_UPDATE_GOLDEN=1";
  }

  std::map<std::string, GoldenRow> computed;
  for (const auto& algorithm : sched::builtin_algorithms()) {
    for (const bool spinlock : {false, true}) {
      const std::string key = row_key(algorithm, spinlock);
      SCOPED_TRACE(key);
      const GoldenRow row = compute_row(algorithm, spinlock);

      // Full-scan enabling must walk the identical trajectory.
      const auto full = run_trace(algorithm, spinlock, /*incremental=*/false);
      EXPECT_EQ(hex64(full.digest), row.digest)
          << "incremental vs full-scan enabling divergence";
      EXPECT_EQ(full.events, row.events);

      // Parallel replication folding must not perturb the estimates.
      EXPECT_EQ(run_rewards(algorithm, spinlock, /*jobs=*/8), row.rewards)
          << "jobs=8 reward estimates diverge from jobs=1";

      if (update) {
        computed[key] = row;
        continue;
      }
      const auto it = fixture.find(key);
      ASSERT_NE(it, fixture.end()) << "fixture row missing";
      EXPECT_EQ(row.events, it->second.events);
      EXPECT_EQ(row.digest, it->second.digest)
          << "event trajectory diverged from the recorded golden trace";
      EXPECT_EQ(row.rewards, it->second.rewards)
          << "reward estimates diverged from the recorded golden values";
    }
  }
  if (update) write_fixture(computed);
}

}  // namespace
}  // namespace vcpusim
