// Property: the `energy` reward integral equals a brute-force replay of
// sum_p f*V^2 * dt over the frequency segments the structured trace
// records, for randomized ladders, topologies and frequency-driving
// algorithms — and the integral is invariant across enabling modes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "san/simulator.hpp"
#include "sched/registry.hpp"
#include "testing/helpers.hpp"
#include "trace/sinks.hpp"
#include "vm/metrics.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim {
namespace {

constexpr double kEndTime = 120.0;

/// A randomized experiment point: topology, sync ratio and a DVFS
/// ladder with strictly ascending frequencies, drawn from the trial's
/// own PropertyRng (never from the stats::Rng under test).
vm::SystemConfig random_dvfs_config(testing::PropertyRng& rng) {
  const int pcpus = rng.uniform_int(1, 3);
  std::vector<int> vms(static_cast<std::size_t>(rng.uniform_int(1, 3)));
  for (auto& v : vms) v = rng.uniform_int(1, 2);
  auto config = vm::make_symmetric_config(pcpus, vms, rng.uniform_int(0, 5));

  config.dvfs.enabled = true;
  const int num_levels = rng.uniform_int(2, 5);
  double f = rng.uniform(0.2, 0.5);
  for (int i = 0; i < num_levels; ++i) {
    config.dvfs.levels.push_back({f, rng.uniform(0.7, 1.2)});
    f += rng.uniform(0.1, 0.4);
  }
  config.dvfs.initial_level =
      rng.chance(0.5) ? -1 : rng.uniform_int(0, num_levels - 1);
  config.validate();
  return config;
}

struct EnergyRun {
  double accumulated = 0.0;
  std::vector<trace::OwnedTraceEvent> freq_events;
};

EnergyRun run_energy(const vm::SystemConfig& config,
                     const std::string& algorithm, std::uint64_t seed,
                     bool incremental) {
  auto system = vm::build_system(config, sched::make_factory(algorithm)());
  auto energy = vm::energy_rate(*system, 0.0);

  trace::RingBufferSink sink(0, san::trace_bit(san::TraceCategory::kScheduler));
  san::SimulatorConfig sim_config;
  sim_config.end_time = kEndTime;
  sim_config.seed = seed;
  sim_config.incremental_enabling = incremental;
  san::Simulator sim(sim_config);
  sim.add_reward(*energy);
  sim.set_trace(&sink);
  sim.set_model(*system->model);
  sim.run();

  EnergyRun out;
  out.accumulated = energy->accumulated();
  for (const auto& e : sink.entries()) {
    if (e.detail == "freq") out.freq_events.push_back(e);
  }
  return out;
}

/// Brute-force replay: start every PCPU at the configured initial level
/// and integrate sum_p f*V^2 over the piecewise-constant frequency
/// segments between the recorded switches ("freq" events: a = PCPU,
/// b = new level).
double replay_energy(const vm::SystemConfig& config,
                     const std::vector<trace::OwnedTraceEvent>& events) {
  const auto levels = config.dvfs.effective_levels();
  std::vector<double> power;
  power.reserve(levels.size());
  for (const auto& l : levels) {
    power.push_back(l.frequency * l.voltage * l.voltage);
  }
  std::vector<int> level(static_cast<std::size_t>(config.num_pcpus),
                         config.dvfs.effective_initial_level());
  const auto rate = [&] {
    double r = 0.0;
    for (const int l : level) r += power[static_cast<std::size_t>(l)];
    return r;
  };
  double total = 0.0;
  double t = 0.0;
  for (const auto& e : events) {
    total += rate() * (e.time - t);
    t = e.time;
    level.at(static_cast<std::size_t>(e.a)) = static_cast<int>(e.b);
  }
  total += rate() * (kEndTime - t);
  return total;
}

TEST(EnergyProperty, RewardIntegralMatchesBruteForceReplay) {
  const std::vector<std::string> algorithms = {"dvfs-cc", "dvfs-la",
                                               "rebalance", "rrs"};
  bool saw_switches = false;
  for (int trial = 0; trial < 8; ++trial) {
    testing::PropertyRng rng(0x9E3779B9ULL + static_cast<std::uint64_t>(trial));
    const auto config = random_dvfs_config(rng);
    const auto& algorithm =
        algorithms[static_cast<std::size_t>(trial) % algorithms.size()];
    SCOPED_TRACE("trial " + std::to_string(trial) + " (" + algorithm + ")");

    const auto run = run_energy(config, algorithm,
                                1000 + static_cast<std::uint64_t>(trial), true);
    const double expected = replay_energy(config, run.freq_events);
    EXPECT_NEAR(run.accumulated, expected,
                1e-8 * (1.0 + std::abs(expected)))
        << run.freq_events.size() << " frequency switches";
    saw_switches = saw_switches || !run.freq_events.empty();
  }
  // The sweep is vacuous if no trial ever changed a frequency.
  EXPECT_TRUE(saw_switches);
}

TEST(EnergyProperty, IntegralInvariantAcrossEnablingModes) {
  for (int trial = 0; trial < 4; ++trial) {
    testing::PropertyRng rng(0xA5A5A5A5ULL + static_cast<std::uint64_t>(trial));
    const auto config = random_dvfs_config(rng);
    const std::string algorithm = trial % 2 == 0 ? "dvfs-cc" : "dvfs-la";
    SCOPED_TRACE("trial " + std::to_string(trial) + " (" + algorithm + ")");

    const auto incremental = run_energy(config, algorithm, 77, true);
    const auto full_scan = run_energy(config, algorithm, 77, false);
    EXPECT_EQ(incremental.accumulated, full_scan.accumulated)
        << "energy integral depends on the enabling mode";
    ASSERT_EQ(incremental.freq_events.size(), full_scan.freq_events.size());
  }
}

}  // namespace
}  // namespace vcpusim
