// Parameterized property sweeps: invariants that must hold for every
// (algorithm, topology, sync-ratio) combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "sched/registry.hpp"
#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

struct PropertyCase {
  std::string algorithm;
  int pcpus;
  std::vector<int> vms;
  int sync_k;

  friend std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
    os << c.algorithm << "_p" << c.pcpus << "_vms";
    for (int v : c.vms) os << "_" << v;
    os << "_sync" << c.sync_k;
    return os;
  }
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::ostringstream os;
  os << info.param;
  std::string s = os.str();
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

class SchedulingProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  std::unique_ptr<vm::VirtualSystem> build() const {
    const auto& p = GetParam();
    return build_system(make_symmetric_config(p.pcpus, p.vms, p.sync_k),
                        sched::make_factory(p.algorithm)());
  }
};

TEST_P(SchedulingProperties, PcpuAssignmentsNeverExceedCapacityAndNeverAlias) {
  auto spy = std::make_unique<testing::SpyScheduler>(
      sched::make_factory(GetParam().algorithm)());
  auto ticks = spy->ticks();
  auto system = build_system(
      make_symmetric_config(GetParam().pcpus, GetParam().vms, GetParam().sync_k),
      std::move(spy));
  testing::run_system(*system, 400.0, 31);
  for (const auto& t : *ticks) {
    std::map<int, int> pcpu_owner;
    int assigned = 0;
    for (const auto& v : t.before) {
      if (v.assigned_pcpu >= 0) {
        ++assigned;
        EXPECT_LT(v.assigned_pcpu, GetParam().pcpus);
        auto [it, inserted] = pcpu_owner.emplace(v.assigned_pcpu, v.vcpu_id);
        EXPECT_TRUE(inserted) << "PCPU " << v.assigned_pcpu
                              << " owned by VCPUs " << it->second << " and "
                              << v.vcpu_id << " at tick " << t.timestamp;
      }
    }
    EXPECT_LE(assigned, GetParam().pcpus);
  }
}

TEST_P(SchedulingProperties, StatusAndAssignmentAgreeEveryTick) {
  auto spy = std::make_unique<testing::SpyScheduler>(
      sched::make_factory(GetParam().algorithm)());
  auto ticks = spy->ticks();
  auto system = build_system(
      make_symmetric_config(GetParam().pcpus, GetParam().vms, GetParam().sync_k),
      std::move(spy));
  testing::run_system(*system, 400.0, 37);
  for (const auto& t : *ticks) {
    for (const auto& v : t.before) {
      if (v.assigned_pcpu < 0) {
        EXPECT_EQ(v.status, static_cast<int>(vm::VcpuStatus::kInactive));
      } else {
        EXPECT_NE(v.status, static_cast<int>(vm::VcpuStatus::kInactive));
      }
      EXPECT_GE(v.remaining_load, 0.0);
    }
  }
}

TEST_P(SchedulingProperties, MetricsStayInUnitInterval) {
  auto system = build();
  auto avail = vm::mean_vcpu_availability(*system, 50.0);
  auto pcpu = vm::pcpu_utilization(*system, 50.0);
  auto util = vm::mean_vcpu_utilization(*system, 50.0);
  testing::run_system(*system, 1050.0, 41, {avail.get(), pcpu.get(), util.get()});
  for (const auto* r : {avail.get(), pcpu.get(), util.get()}) {
    const double x = r->time_averaged(1050.0);
    EXPECT_GE(x, 0.0) << r->name();
    EXPECT_LE(x, 1.0 + 1e-9) << r->name();
  }
}

TEST_P(SchedulingProperties, UtilizationBoundedByAvailability) {
  auto system = build();
  auto avail = vm::mean_vcpu_availability(*system, 50.0);
  auto util = vm::mean_vcpu_utilization(*system, 50.0);
  testing::run_system(*system, 1050.0, 43, {avail.get(), util.get()});
  EXPECT_LE(util->time_averaged(1050.0),
            avail->time_averaged(1050.0) + 1e-9);
}

TEST_P(SchedulingProperties, WorkConservation) {
  // Completed work (sum of loads) can never exceed PCPU capacity, and
  // unless the algorithm legitimately starves someone it should be well
  // above zero.
  auto system = build();
  auto thr = vm::system_throughput(*system, 0.0);
  auto pcpu = vm::pcpu_utilization(*system, 0.0);
  testing::run_system(*system, 1000.0, 47, {thr.get(), pcpu.get()});
  const double jobs_per_tick = thr->time_averaged(1000.0);
  // Mean load is 5.5 (uniformint 1..10): busy vcpu-ticks <= pcpu-ticks.
  EXPECT_LE(jobs_per_tick * 5.5, GetParam().pcpus * 1.15);
  EXPECT_GT(jobs_per_tick, 0.0);
}

TEST_P(SchedulingProperties, VcpuAvailabilitySumMatchesPcpuUsage) {
  // Sum over VCPUs of availability == (PCPU utilization * num_pcpus):
  // both count the same assigned pcpu-ticks.
  auto system = build();
  auto pcpu = vm::pcpu_utilization(*system, 50.0);
  std::vector<std::unique_ptr<san::RewardVariable>> per;
  std::vector<san::RewardVariable*> raw{pcpu.get()};
  for (int v = 0; v < system->num_vcpus(); ++v) {
    per.push_back(vm::vcpu_availability(*system, v, 50.0));
    raw.push_back(per.back().get());
  }
  testing::run_system(*system, 1050.0, 53, raw);
  double total_avail = 0;
  for (auto& r : per) total_avail += r->time_averaged(1050.0);
  EXPECT_NEAR(total_avail,
              pcpu->time_averaged(1050.0) * GetParam().pcpus, 1e-6);
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const std::vector<std::vector<int>> topologies = {{2, 1, 1}, {2, 2}, {2, 3}};
  for (const auto& algorithm :
       {"rrs", "scs", "rcs", "balance", "credit", "fifo"}) {
    for (const auto& vms : topologies) {
      for (const int pcpus : {1, 2, 4}) {
        // SCS genuinely schedules nothing when no VM fits the machine;
        // that configuration is covered by the dedicated SCS starvation
        // tests, not the generic liveness properties.
        const int smallest = *std::min_element(vms.begin(), vms.end());
        if (std::string(algorithm) == "scs" && smallest > pcpus) continue;
        cases.push_back(PropertyCase{algorithm, pcpus, vms, 5});
      }
    }
    cases.push_back(PropertyCase{algorithm, 2, {2, 2}, 2});  // tight sync
    cases.push_back(PropertyCase{algorithm, 2, {2, 2}, 0});  // no sync
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulingProperties,
                         ::testing::ValuesIn(property_cases()), case_name);

}  // namespace
}  // namespace vcpusim
