// Whole-stack engine equivalence: every shipped scheduling algorithm,
// run under the compiled kernel and under the object-graph reference,
// must produce bit-identical trajectories — same firing sequence, same
// event/evaluation counts, same reward integrals, same job totals —
// for every combination of incremental enabling and workload depth.
// This is the system-level closure of tests/san/compiled_engine_test.cpp:
// the vm model exercises dynamic write footprints, compositional
// scheduler-bridge gates, uniform-int workload draws, and structured
// markings that no synthetic kernel model covers.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "san/simulator.hpp"
#include "san/trace.hpp"
#include "sched/registry.hpp"
#include "vm/metrics.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim {
namespace {

/// Full firing record; equality across engines is the trajectory check.
class Recorder final : public san::TraceObserver {
 public:
  struct Entry {
    san::Time time;
    std::string activity;
    std::size_t case_index;
    bool operator==(const Entry&) const = default;
  };
  void on_fire(san::Time now, const san::Activity& activity,
               std::size_t case_index) override {
    entries.push_back({now, activity.name(), case_index});
  }
  std::vector<Entry> entries;
};

struct Outcome {
  std::vector<Recorder::Entry> fires;
  san::RunStats stats;
  double avail, util, pcpu;
  std::int64_t jobs;
  double energy = 0.0;  ///< DVFS runs only (integral of sum_p f*V^2)
};

Outcome run_stack(const std::string& algorithm, san::Engine engine,
                  bool incremental, int jobs_per_vcpu, std::uint64_t seed,
                  bool dvfs = false) {
  auto config_vm = vm::make_symmetric_config(2, {2, 1}, jobs_per_vcpu);
  config_vm.dvfs.enabled = dvfs;  // default ladder when on
  auto system =
      vm::build_system(config_vm, sched::make_factory(algorithm)());
  auto avail = vm::mean_vcpu_availability(*system, 50.0);
  auto util = vm::mean_vcpu_utilization(*system, 50.0);
  auto pcpu = vm::pcpu_utilization(*system, 50.0);

  std::shared_ptr<san::RewardVariable> energy;
  if (dvfs) energy = vm::energy_rate(*system, 50.0);

  san::SimulatorConfig config;
  config.end_time = 400.0;
  config.seed = seed;
  config.engine = engine;
  config.incremental_enabling = incremental;
  san::Simulator sim(config);
  Recorder rec;
  sim.add_observer(rec);
  sim.add_reward(*avail);
  sim.add_reward(*util);
  sim.add_reward(*pcpu);
  if (energy != nullptr) sim.add_reward(*energy);
  sim.set_model(*system->model);
  const auto stats = sim.run();
  return {std::move(rec.entries), stats,
          avail->time_averaged(400.0), util->time_averaged(400.0),
          pcpu->time_averaged(400.0), vm::total_completed_jobs(*system),
          energy != nullptr ? energy->accumulated() : 0.0};
}

void expect_identical(const Outcome& obj, const Outcome& comp,
                      const std::string& label) {
  ASSERT_FALSE(obj.fires.empty()) << label;
  EXPECT_EQ(obj.fires, comp.fires) << label;
  EXPECT_EQ(obj.stats.events, comp.stats.events) << label;
  EXPECT_EQ(obj.stats.enabling_evals, comp.stats.enabling_evals) << label;
  EXPECT_EQ(obj.stats.aborted_events, comp.stats.aborted_events) << label;
  EXPECT_EQ(obj.jobs, comp.jobs) << label;
  EXPECT_DOUBLE_EQ(obj.avail, comp.avail) << label;
  EXPECT_DOUBLE_EQ(obj.util, comp.util) << label;
  EXPECT_DOUBLE_EQ(obj.pcpu, comp.pcpu) << label;
  EXPECT_DOUBLE_EQ(obj.energy, comp.energy) << label;
}

TEST(EngineEquivalence, EveryAlgorithmBitIdenticalAcrossEngines) {
  for (const auto& name : sched::builtin_algorithms()) {
    for (const int jobs : {1, 8}) {
      const std::string label = name + "/jobs=" + std::to_string(jobs);
      const auto obj =
          run_stack(name, san::Engine::kObjectGraph, true, jobs, 99);
      const auto comp = run_stack(name, san::Engine::kCompiled, true, jobs, 99);
      expect_identical(obj, comp, label);
    }
  }
}

TEST(EngineEquivalence, FullScanModeBitIdenticalAcrossEngines) {
  // With incremental enabling off, both engines fall back to full
  // rescans after every firing; the compiled fast paths (fired masks,
  // enabled bitmasks, the event calendar) must not leak into this mode's
  // evaluation accounting.
  for (const auto& name : sched::builtin_algorithms()) {
    const auto obj = run_stack(name, san::Engine::kObjectGraph, false, 4, 7);
    const auto comp = run_stack(name, san::Engine::kCompiled, false, 4, 7);
    expect_identical(obj, comp, name + "/full-scan");
  }
}

TEST(EngineEquivalence, DvfsSystemsBitIdenticalAcrossEnginesAndJobs) {
  // The DVFS lowering (Freq_Levels vector marking, per-VCPU Service_Scale
  // places, the bridge's frequency-switch pass, the energy reward's
  // dynamic reads) must survive the compiled engine and be independent
  // of the workload depth, for frequency-driving and oblivious
  // algorithms alike.
  for (const std::string name : {"dvfs-cc", "dvfs-la", "rebalance", "credit"}) {
    for (const int jobs : {1, 8}) {
      const std::string label = name + "/dvfs/jobs=" + std::to_string(jobs);
      const auto obj = run_stack(name, san::Engine::kObjectGraph, true, jobs,
                                 99, /*dvfs=*/true);
      const auto comp = run_stack(name, san::Engine::kCompiled, true, jobs,
                                  99, /*dvfs=*/true);
      expect_identical(obj, comp, label);
    }
    // Full-scan enabling walks the identical DVFS trajectory too.
    const auto obj = run_stack(name, san::Engine::kObjectGraph, false, 4, 7,
                               /*dvfs=*/true);
    const auto comp = run_stack(name, san::Engine::kCompiled, false, 4, 7,
                                /*dvfs=*/true);
    expect_identical(obj, comp, name + "/dvfs/full-scan");
  }
}

TEST(EngineEquivalence, IncrementalTogglesAgreeWithinCompiledEngine) {
  // The incremental index is a pure optimization in both engines: the
  // trajectory (though not enabling_evals) must match full-scan mode.
  const auto inc = run_stack("credit", san::Engine::kCompiled, true, 4, 31);
  const auto full = run_stack("credit", san::Engine::kCompiled, false, 4, 31);
  EXPECT_EQ(inc.fires, full.fires);
  EXPECT_EQ(inc.stats.events, full.stats.events);
  EXPECT_EQ(inc.jobs, full.jobs);
  EXPECT_LT(inc.stats.enabling_evals, full.stats.enabling_evals);
}

}  // namespace
}  // namespace vcpusim
