// Golden structured-trace fixtures: the JSONL event stream (activity
// fires, enabling changes, marking updates, scheduler decisions,
// replication markers) of every shipped algorithm on a 2-PCPU / 4-VCPU
// system is pinned byte-for-byte, and the stream is required to be
// identical across --jobs values and across incremental-enabling modes.
//
// Regenerate (only when a trajectory or format change is intended) with:
//   VCPUSIM_UPDATE_GOLDEN=1 ./integration_tests --gtest_filter='StructuredTrace.*'
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "san/simulator.hpp"
#include "sched/registry.hpp"
#include "testing/json.hpp"
#include "trace/sinks.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim {
namespace {

constexpr const char* kFixtureDir =
    VCPUSIM_TEST_DIR "/testing/golden/structured";
constexpr std::uint64_t kSeed = 20260805;
constexpr san::Time kEndTime = 12.0;
constexpr std::size_t kReplications = 2;
/// Fixtures pin the first N lines (the full streams run to thousands).
constexpr std::size_t kFixtureLines = 300;

vm::SystemConfig two_pcpu_four_vcpu() {
  return vm::make_symmetric_config(2, {2, 2}, 5);
}

/// The DVFS families trace on a system that actually has a frequency
/// ladder, so their fixtures pin the "freq" decision events too; every
/// other algorithm keeps the plain system (and its original fixture).
vm::SystemConfig system_for(const std::string& algorithm) {
  auto system = two_pcpu_four_vcpu();
  if (algorithm.rfind("dvfs", 0) == 0) system.dvfs.enabled = true;
  return system;
}

/// The full JSONL stream of `kReplications` replications.
std::string structured_stream(const std::string& algorithm,
                              std::size_t jobs) {
  exp::RunSpec spec;
  spec.system = system_for(algorithm);
  spec.scheduler = sched::make_factory(algorithm);
  spec.end_time = kEndTime;
  spec.warmup = 1.0;
  spec.base_seed = kSeed;
  spec.jobs = jobs;
  spec.policy.min_replications = kReplications;
  spec.policy.max_replications = kReplications;

  std::ostringstream os;
  trace::JsonlSink sink(os);
  spec.trace = &sink;
  exp::run_point(spec, {{exp::MetricKind::kMeanVcpuAvailability, -1, "m"}});
  sink.finish();
  return os.str();
}

std::string first_lines(const std::string& text, std::size_t n) {
  std::istringstream is(text);
  std::ostringstream out;
  std::string line;
  for (std::size_t i = 0; i < n && std::getline(is, line); ++i) {
    out << line << "\n";
  }
  return out.str();
}

std::string fixture_path(const std::string& algorithm) {
  return std::string(kFixtureDir) + "/" + algorithm + ".jsonl";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool update_mode() {
  const char* env = std::getenv("VCPUSIM_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(StructuredTrace, PerAlgorithmStreamsMatchFixtures) {
  const bool update = update_mode();
  for (const auto& algorithm : sched::builtin_algorithms()) {
    SCOPED_TRACE(algorithm);
    const std::string head =
        first_lines(structured_stream(algorithm, /*jobs=*/1), kFixtureLines);
    ASSERT_FALSE(head.empty());
    if (update) {
      std::ofstream out(fixture_path(algorithm));
      ASSERT_TRUE(out) << "cannot write " << fixture_path(algorithm);
      out << head;
      continue;
    }
    const std::string expected = read_file(fixture_path(algorithm));
    ASSERT_FALSE(expected.empty())
        << "missing fixture " << fixture_path(algorithm)
        << " — regenerate with VCPUSIM_UPDATE_GOLDEN=1";
    EXPECT_EQ(head, expected)
        << "structured trace diverged from the recorded fixture";
  }
}

TEST(StructuredTrace, ByteIdenticalAcrossJobs) {
  for (const std::string algorithm : {"rrs", "credit", "dvfs-cc"}) {
    SCOPED_TRACE(algorithm);
    const std::string jobs1 = structured_stream(algorithm, /*jobs=*/1);
    const std::string jobs8 = structured_stream(algorithm, /*jobs=*/8);
    EXPECT_EQ(jobs1, jobs8) << "trace bytes depend on the worker count";
  }
}

TEST(StructuredTrace, ByteIdenticalAcrossEnablingModes) {
  for (const std::string algorithm : {"rrs", "credit", "dvfs-la"}) {
    SCOPED_TRACE(algorithm);
    std::vector<std::string> streams;
    for (const bool incremental : {true, false}) {
      auto system = vm::build_system(system_for(algorithm),
                                     sched::make_factory(algorithm)());
      san::SimulatorConfig config;
      config.end_time = kEndTime;
      config.seed = kSeed;
      config.incremental_enabling = incremental;
      san::Simulator sim(config);
      sim.set_model(*system->model);
      std::ostringstream os;
      trace::JsonlSink sink(os);
      sim.set_trace(&sink);
      sim.run();
      sink.finish();
      streams.push_back(os.str());
    }
    EXPECT_EQ(streams[0], streams[1])
        << "trace bytes depend on the enabling mode";
  }
}

TEST(StructuredTrace, StreamIsWellFormedJsonlWithReplicationMarkers) {
  const std::string stream = structured_stream("rrs", /*jobs=*/1);
  std::istringstream lines(stream);
  std::string line;
  std::vector<std::int64_t> markers;
  std::size_t count = 0;
  bool saw_fire = false;
  bool saw_sched = false;
  bool saw_marking = false;
  bool saw_enabling = false;
  while (std::getline(lines, line)) {
    const auto doc = testing::parse_json(line);
    const std::string kind = doc.at("kind").string;
    if (kind == "marker" && doc.at("label").string == "replication") {
      markers.push_back(static_cast<std::int64_t>(doc.at("value").number));
    }
    saw_fire = saw_fire || kind == "fire";
    saw_sched = saw_sched || kind == "sched";
    saw_marking = saw_marking || kind == "marking";
    saw_enabling = saw_enabling || kind == "enabling";
    ++count;
  }
  EXPECT_GT(count, 100U);
  EXPECT_EQ(markers, (std::vector<std::int64_t>{0, 1}));
  EXPECT_TRUE(saw_fire);
  EXPECT_TRUE(saw_sched);
  EXPECT_TRUE(saw_marking);
  EXPECT_TRUE(saw_enabling);
}

}  // namespace
}  // namespace vcpusim
