// End-to-end behaviour of the complete composed model (all submodels
// wired together, real schedulers, long runs).
#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim {
namespace {

using vm::build_system;
using vm::make_symmetric_config;

TEST(FullSystem, PaperFigure7SystemRunsUnderEveryBuiltin) {
  // Two 2-VCPU VMs and a VCPU scheduler — Figure 7 — under every
  // registered algorithm, long enough to exercise barriers, expiry,
  // dispatch and completion paths.
  for (const auto& name : sched::builtin_algorithms()) {
    auto system = build_system(make_symmetric_config(2, {2, 2}, 5),
                               sched::make_factory(name)());
    const auto stats = testing::run_system(*system, 2000.0, 17);
    EXPECT_EQ(stats.end_time, 2000.0) << name;
    EXPECT_FALSE(stats.hit_event_cap) << name;
    EXPECT_GT(vm::total_completed_jobs(*system), 100) << name;
  }
}

TEST(FullSystem, SingleVmSinglePcpuSingleVcpu) {
  // Smallest possible system.
  auto system = build_system(make_symmetric_config(1, {1}, 5),
                             sched::make_factory("rrs")());
  auto util = vm::mean_vcpu_utilization(*system, 50.0);
  testing::run_system(*system, 1050.0, 1, {util.get()});
  // One VCPU with a saturating generator: essentially always busy.
  EXPECT_GT(util->time_averaged(1050.0), 0.9);
}

TEST(FullSystem, SixteenVcpusAcrossEightVms) {
  // The paper's scheduler model "statically defines 16 VCPU slots"; we
  // size dynamically — verify a 16-VCPU system works.
  auto system = build_system(
      make_symmetric_config(8, {2, 2, 2, 2, 2, 2, 2, 2}, 5),
      sched::make_factory("rcs")());
  EXPECT_EQ(system->num_vcpus(), 16);
  const auto stats = testing::run_system(*system, 500.0, 3);
  EXPECT_GT(vm::total_completed_jobs(*system), 200);
  EXPECT_GT(stats.events, 5000u);
}

TEST(FullSystem, ThirtyTwoVcpusBeyondPaperStaticLimit) {
  // Larger than the paper's static Mobius model allows: 32 VCPUs.
  std::vector<int> vms(16, 2);
  auto system = build_system(make_symmetric_config(16, vms, 5),
                             sched::make_factory("scs")());
  EXPECT_EQ(system->num_vcpus(), 32);
  EXPECT_NO_THROW(testing::run_system(*system, 200.0, 3));
}

TEST(FullSystem, MixedWorkloadDistributionsPerVm) {
  auto cfg = make_symmetric_config(2, {1, 1, 1}, 4);
  cfg.vms[0].load_distribution = stats::make_exponential(0.2);
  cfg.vms[1].load_distribution = stats::make_deterministic(3.0);
  cfg.vms[2].load_distribution = stats::make_geometric(0.25);
  auto system = build_system(cfg, sched::make_factory("rrs")());
  testing::run_system(*system, 1000.0, 5);
  for (int v = 0; v < 3; ++v) {
    EXPECT_GT(vm::completed_jobs(*system, v), 10) << "vm " << v;
  }
}

TEST(FullSystem, ThrottledGenerationLeavesVcpusIdle) {
  // Slow Poisson arrivals: VCPU utilization must sit near the offered
  // load (lambda * mean_load / num_vcpus), well below saturation.
  auto cfg = make_symmetric_config(2, {2}, 0);
  cfg.vms[0].inter_generation = stats::make_exponential(0.1);  // 1 job/10 ticks
  cfg.vms[0].load_distribution = stats::make_deterministic(4.0);
  auto system = build_system(cfg, sched::make_factory("rrs")());
  auto util = vm::mean_vcpu_utilization(*system, 500.0);
  testing::run_system(*system, 10500.0, 7, {util.get()});
  // Offered per-VCPU load = 0.1 * 4 / 2 = 0.2.
  EXPECT_NEAR(util->time_averaged(10500.0), 0.2, 0.05);
}

TEST(FullSystem, BarrierNeverDeadlocksUnderAnyBuiltin) {
  // Tight sync ratio and heavy overcommit: every algorithm must keep
  // completing jobs (no absorbing blocked state).
  for (const auto& name : sched::builtin_algorithms()) {
    auto system = build_system(make_symmetric_config(2, {2, 4}, 2),
                               sched::make_factory(name)());
    testing::run_system(*system, 3000.0, 23);
    if (name == "scs") {
      // SCS legitimately starves the 4-VCPU VM on 2 PCPUs...
      EXPECT_GT(vm::completed_jobs(*system, 0), 50) << name;
    } else if (name == "priority") {
      // ...and strict priority legitimately starves the lower VM.
      EXPECT_GT(vm::total_completed_jobs(*system), 50) << name;
    } else {
      EXPECT_GT(vm::completed_jobs(*system, 0), 50) << name;
      EXPECT_GT(vm::completed_jobs(*system, 1), 50) << name;
    }
  }
}

TEST(FullSystem, EventCountScalesLinearlyWithHorizon) {
  auto run_events = [](double end) {
    auto system = build_system(make_symmetric_config(2, {2, 2}, 5),
                               sched::make_factory("rrs")());
    return testing::run_system(*system, end, 7).events;
  };
  const auto short_run = run_events(500.0);
  const auto long_run = run_events(5000.0);
  EXPECT_NEAR(static_cast<double>(long_run) / static_cast<double>(short_run),
              10.0, 1.5);
}

}  // namespace
}  // namespace vcpusim
