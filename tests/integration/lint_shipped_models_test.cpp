// Whole-repo lint gate: every shipped system configuration, built under
// every registered algorithm, must pass static analysis with zero
// diagnostics, and the exp runner's opt-in lint hook must accept them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "san/analyze/analyzer.hpp"
#include "sched/contract.hpp"
#include "sched/registry.hpp"
#include "vm/config.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim {
namespace {

std::vector<vm::SystemConfig> shipped_configs() {
  std::vector<vm::SystemConfig> configs;
  // The paper's experiment: 4 PCPUs, 2 VMs x 2 VCPUs, 1:5 sync ratio.
  configs.push_back(vm::make_symmetric_config(4, {2, 2}, 5));
  // No synchronization at all.
  configs.push_back(vm::make_symmetric_config(2, {2, 2}, 0));
  // Asymmetric consolidation with a spinlock-extended VM.
  auto mixed = vm::make_symmetric_config(4, {4, 2, 1}, 3);
  mixed.vms[0].spinlock.enabled = true;
  mixed.vms[0].spinlock.lock_probability = 0.5;
  configs.push_back(mixed);
  return configs;
}

TEST(LintShippedModels, EveryAlgorithmOnEveryConfigIsClean) {
  for (const auto& config : shipped_configs()) {
    for (const auto& algorithm : sched::builtin_algorithms()) {
      const auto factory = sched::make_factory(algorithm);
      const auto system = vm::build_system(config, factory());
      const auto report = san::analyze::Analyzer().analyze(*system->model);
      EXPECT_TRUE(report.footprints_complete) << algorithm;
      EXPECT_TRUE(report.clean())
          << algorithm << " on " << config.vms.size() << " VMs:\n"
          << report.render_text();
    }
  }
}

TEST(LintShippedModels, BuiltinContractsAreClean) {
  const auto diags = sched::check_builtin_contracts();
  std::string rendered;
  for (const auto& d : diags) rendered += d.to_text() + "\n";
  EXPECT_TRUE(diags.empty()) << rendered;
}

TEST(LintShippedModels, RunnerLintOptInAcceptsShippedModels) {
  exp::RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {1, 1}, 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.lint = true;
  spec.end_time = 120.0;
  spec.warmup = 20.0;
  spec.policy.min_replications = 2;
  spec.policy.max_replications = 2;

  const auto result = exp::run_point(
      spec, {{exp::MetricKind::kMeanVcpuAvailability, -1, ""}});
  EXPECT_EQ(result.replications, 2u);
}

}  // namespace
}  // namespace vcpusim
