// Whole-repo lint gate: every shipped system configuration, built under
// every registered algorithm, must pass static analysis with zero
// diagnostics, and the exp runner's opt-in lint hook must accept them.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "san/analyze/analyzer.hpp"
#include "san/analyze/invariants.hpp"
#include "sched/contract.hpp"
#include "sched/registry.hpp"
#include "vm/config.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim {
namespace {

std::vector<vm::SystemConfig> shipped_configs() {
  std::vector<vm::SystemConfig> configs;
  // The paper's experiment: 4 PCPUs, 2 VMs x 2 VCPUs, 1:5 sync ratio.
  configs.push_back(vm::make_symmetric_config(4, {2, 2}, 5));
  // No synchronization at all.
  configs.push_back(vm::make_symmetric_config(2, {2, 2}, 0));
  // Asymmetric consolidation with a spinlock-extended VM.
  auto mixed = vm::make_symmetric_config(4, {4, 2, 1}, 3);
  mixed.vms[0].spinlock.enabled = true;
  mixed.vms[0].spinlock.lock_probability = 0.5;
  configs.push_back(mixed);
  return configs;
}

TEST(LintShippedModels, EveryAlgorithmOnEveryConfigIsClean) {
  for (const auto& config : shipped_configs()) {
    for (const auto& algorithm : sched::builtin_algorithms()) {
      const auto factory = sched::make_factory(algorithm);
      const auto system = vm::build_system(config, factory());
      const auto report = san::analyze::Analyzer().analyze(*system->model);
      EXPECT_TRUE(report.footprints_complete) << algorithm;
      EXPECT_TRUE(report.clean())
          << algorithm << " on " << config.vms.size() << " VMs:\n"
          << report.render_text();
    }
  }
}

// The invariant engine's acceptance gate: prove mode must derive at
// least one conservation law on every shipped model, and every VCPU /
// PCPU state token (slot status, host assignment, PCPU occupancy,
// schedule-in/out flags, workload and blocked flags) must come out with
// a finite structural bound; only the genuine counters may be reported
// unbounded.
TEST(LintShippedModels, ProveModeDerivesInvariantsAndBoundsEveryStateToken) {
  for (const auto& config : shipped_configs()) {
    const auto system =
        vm::build_system(config, sched::make_factory("rrs")());
    SCOPED_TRACE(std::to_string(config.vms.size()) + " VMs, " +
                 std::to_string(config.num_pcpus) + " PCPUs");

    const auto analysis = san::analyze::analyze_invariants(*system->model);
    ASSERT_TRUE(analysis.incidence.complete);
    EXPECT_FALSE(analysis.budget_exhausted);
    EXPECT_FALSE(analysis.invariants.empty());

    std::set<std::size_t> bounded;
    for (const auto& b : analysis.bounds) bounded.insert(b.token);
    for (std::size_t t = 0; t < analysis.incidence.tokens.size(); ++t) {
      const auto& token = analysis.incidence.tokens[t];
      if (token.opaque) continue;
      const bool counter =
          token.name.find("Outstanding_Jobs") != std::string::npos ||
          token.name.find("Completed_Jobs") != std::string::npos ||
          token.name.find("Spin_Ticks") != std::string::npos ||
          token.name.find("Jobs_Until_Sync") != std::string::npos;
      if (counter) continue;  // genuinely unbounded by design
      EXPECT_TRUE(bounded.count(t) != 0)
          << "state token without a proven finite bound: " << token.name;
    }
    // And nothing except those counters may be reported unbounded.
    for (const std::size_t t : analysis.unbounded) {
      const auto& name = analysis.incidence.tokens[t].name;
      EXPECT_TRUE(name.find("Outstanding_Jobs") != std::string::npos ||
                  name.find("Completed_Jobs") != std::string::npos ||
                  name.find("Spin_Ticks") != std::string::npos ||
                  name.find("Jobs_Until_Sync") != std::string::npos)
          << "unexpected unbounded token: " << name;
    }
  }
}

// The same gate through the Analyzer surface (what `vcpusim lint
// --prove --strict` runs in CI): the invariant section is computed and
// the report stays clean for every algorithm.
TEST(LintShippedModels, ProveModeReportCleanForEveryAlgorithm) {
  san::analyze::AnalyzerOptions options;
  options.prove = true;
  const auto config = vm::make_symmetric_config(4, {2, 2}, 5);
  for (const auto& algorithm : sched::builtin_algorithms()) {
    const auto system = vm::build_system(config, sched::make_factory(algorithm)());
    const auto report = san::analyze::Analyzer(options).analyze(*system->model);
    SCOPED_TRACE(algorithm);
    EXPECT_TRUE(report.invariants.computed);
    EXPECT_FALSE(report.invariants.invariants.empty());
    EXPECT_FALSE(report.invariants.bounds.empty());
    EXPECT_EQ(report.errors(), 0u) << report.render_text();
  }
}

TEST(LintShippedModels, BuiltinContractsAreClean) {
  const auto diags = sched::check_builtin_contracts();
  std::string rendered;
  for (const auto& d : diags) rendered += d.to_text() + "\n";
  EXPECT_TRUE(diags.empty()) << rendered;
}

TEST(LintShippedModels, RunnerLintOptInAcceptsShippedModels) {
  exp::RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {1, 1}, 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.lint = true;
  spec.end_time = 120.0;
  spec.warmup = 20.0;
  spec.policy.min_replications = 2;
  spec.policy.max_replications = 2;

  const auto result = exp::run_point(
      spec, {{exp::MetricKind::kMeanVcpuAvailability, -1, ""}});
  EXPECT_EQ(result.replications, 2u);
}

}  // namespace
}  // namespace vcpusim
