// Reproducibility guarantees: identical seeds give bit-identical
// trajectories and metrics across the whole stack.
#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim {
namespace {

struct RunResult {
  double avail;
  double util;
  double pcpu;
  std::int64_t jobs;
  std::uint64_t events;
};

RunResult run_once_full(const std::string& algorithm, std::uint64_t seed) {
  auto system = vm::build_system(vm::make_symmetric_config(2, {2, 1}, 4),
                                 sched::make_factory(algorithm)());
  auto avail = vm::mean_vcpu_availability(*system, 100.0);
  auto util = vm::mean_vcpu_utilization(*system, 100.0);
  auto pcpu = vm::pcpu_utilization(*system, 100.0);
  const auto stats = testing::run_system(*system, 1500.0, seed,
                                         {avail.get(), util.get(), pcpu.get()});
  return {avail->time_averaged(1500.0), util->time_averaged(1500.0),
          pcpu->time_averaged(1500.0), vm::total_completed_jobs(*system),
          stats.events};
}

TEST(Determinism, IdenticalSeedsBitIdenticalForEveryAlgorithm) {
  for (const auto& name : sched::builtin_algorithms()) {
    const auto a = run_once_full(name, 12345);
    const auto b = run_once_full(name, 12345);
    EXPECT_EQ(a.events, b.events) << name;
    EXPECT_EQ(a.jobs, b.jobs) << name;
    EXPECT_DOUBLE_EQ(a.avail, b.avail) << name;
    EXPECT_DOUBLE_EQ(a.util, b.util) << name;
    EXPECT_DOUBLE_EQ(a.pcpu, b.pcpu) << name;
  }
}

TEST(Determinism, DifferentSeedsDivergeInWorkload) {
  const auto a = run_once_full("rrs", 1);
  const auto b = run_once_full("rrs", 2);
  EXPECT_NE(a.jobs, b.jobs);
}

TEST(Determinism, RerunOnSameSimulatorObjectReproduces) {
  auto system = vm::build_system(vm::make_symmetric_config(2, {2, 2}, 5),
                                 sched::make_factory("rrs")());
  san::SimulatorConfig config;
  config.end_time = 500.0;
  config.seed = 77;
  san::Simulator sim(config);
  sim.set_model(*system->model);
  sim.run();
  const auto jobs_first = vm::total_completed_jobs(*system);
  sim.run();
  // NOTE: the second run reuses the simulator's RNG stream, so it is a
  // *different* replication — but the marking must have been fully reset
  // (jobs counter restarts from zero, same order of magnitude).
  const auto jobs_second = vm::total_completed_jobs(*system);
  EXPECT_GT(jobs_second, 0);
  EXPECT_LT(std::abs(jobs_first - jobs_second), jobs_first / 2 + 10);
}

TEST(Determinism, SchedulerStateIsNotSharedAcrossSystems) {
  // Two systems built from the same factory must not interfere.
  const auto factory = sched::make_factory("rcs");
  auto s1 = vm::build_system(vm::make_symmetric_config(2, {2, 2}, 5), factory());
  auto s2 = vm::build_system(vm::make_symmetric_config(2, {2, 2}, 5), factory());
  testing::run_system(*s1, 500.0, 5);
  const auto jobs_before = vm::total_completed_jobs(*s2);
  EXPECT_EQ(jobs_before, 0);  // untouched by s1's run
  testing::run_system(*s2, 500.0, 5);
  EXPECT_EQ(vm::total_completed_jobs(*s1), vm::total_completed_jobs(*s2));
}

}  // namespace
}  // namespace vcpusim
