// The footprint sanitizer must be a pure observer: running every
// builtin algorithm (with and without the spinlock extension) under
// verify_footprints must (a) walk the bit-identical event trajectory a
// plain run walks, and (b) report zero footprint violations on the
// shipped models — the dynamic half of the "prove the footprints"
// gate, complementing the static lint in lint_shipped_models_test.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "san/sanitizer.hpp"
#include "san/simulator.hpp"
#include "sched/registry.hpp"
#include "trace/event_log.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim {
namespace {

constexpr san::Time kEndTime = 150.0;
constexpr std::uint64_t kSeed = 20260805;

vm::SystemConfig fig8_config(bool spinlock) {
  auto cfg = vm::make_symmetric_config(2, {2, 1, 1}, 5);
  if (spinlock) {
    for (auto& vmc : cfg.vms) vmc.spinlock.enabled = true;
  }
  return cfg;
}

/// FNV-1a over the full completion sequence.
std::uint64_t trace_digest(const trace::EventLog& log) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  for (const auto& e : log.entries()) {
    mix(&e.time, sizeof(e.time));
    mix(e.activity.data(), e.activity.size());
    mix(&e.case_index, sizeof(e.case_index));
  }
  return h;
}

struct TraceRun {
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  std::size_t footprint_errors = 0;
  std::string report_text;
};

TraceRun run_trace(const std::string& algorithm, bool spinlock,
                   bool verify_footprints) {
  auto system = vm::build_system(fig8_config(spinlock),
                                 sched::make_factory(algorithm)());
  san::SimulatorConfig config;
  config.end_time = kEndTime;
  config.seed = kSeed;
  config.verify_footprints = verify_footprints;
  san::Simulator sim(config);
  sim.set_model(*system->model);
  trace::EventLog log;
  sim.add_observer(log);
  const auto stats = sim.run();
  TraceRun run;
  run.events = stats.events;
  run.digest = trace_digest(log);
  if (verify_footprints) {
    const san::FootprintReport* report = sim.footprint_report();
    EXPECT_NE(report, nullptr);
    if (report != nullptr) {
      run.footprint_errors = report->errors();
      run.report_text = report->render_text();
    }
  }
  return run;
}

TEST(SanitizerIdentity, EveryAlgorithmIsTrajectoryIdenticalAndClean) {
  for (const auto& algorithm : sched::builtin_algorithms()) {
    for (const bool spinlock : {false, true}) {
      SCOPED_TRACE(algorithm + (spinlock ? "|spinlock" : "|plain"));
      const TraceRun plain = run_trace(algorithm, spinlock, false);
      const TraceRun checked = run_trace(algorithm, spinlock, true);
      EXPECT_EQ(checked.events, plain.events)
          << "sanitizer perturbed the event count";
      EXPECT_EQ(checked.digest, plain.digest)
          << "sanitizer perturbed the event trajectory";
      EXPECT_EQ(checked.footprint_errors, 0u) << checked.report_text;
    }
  }
}

}  // namespace
}  // namespace vcpusim
