// The qualitative results of the paper's evaluation section, asserted at
// reduced simulation scale. The bench/ binaries regenerate the full
// figures; these tests pin the *shapes* so a regression that flips a
// paper conclusion fails CI.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "sched/registry.hpp"

namespace vcpusim {
namespace {

exp::RunSpec shape_spec(const std::string& algorithm, int pcpus,
                        const std::vector<int>& vms, int sync_k) {
  exp::RunSpec spec;
  spec.system = vm::make_symmetric_config(pcpus, vms, sync_k);
  spec.scheduler = sched::make_factory(algorithm);
  spec.end_time = 2000.0;
  spec.warmup = 200.0;
  spec.policy.min_replications = 4;
  spec.policy.max_replications = 12;
  spec.policy.target_half_width = 0.03;
  return spec;
}

double availability(const std::string& algorithm, int pcpus, int vcpu) {
  const auto result =
      exp::run_point(shape_spec(algorithm, pcpus, {2, 1, 1}, 5),
                     {{exp::MetricKind::kVcpuAvailability, vcpu, "a"}});
  return result.metric("a").ci.mean;
}

// --- Figure 8: fairness (VCPU availability, 2+1+1 VMs) ----------------

TEST(PaperFigure8, RrsIsFairAtEveryPcpuCount) {
  for (const int pcpus : {1, 2, 3, 4}) {
    const double share = std::min(1.0, pcpus / 4.0);
    for (const int vcpu : {0, 1, 2, 3}) {
      EXPECT_NEAR(availability("rrs", pcpus, vcpu), share, 0.05)
          << "pcpus=" << pcpus << " vcpu=" << vcpu;
    }
  }
}

TEST(PaperFigure8, ScsStarvesWideVmOnOnePcpu) {
  EXPECT_LT(availability("scs", 1, 0), 0.01);
  EXPECT_LT(availability("scs", 1, 1), 0.01);
  EXPECT_GT(availability("scs", 1, 2), 0.40);
  EXPECT_GT(availability("scs", 1, 3), 0.40);
}

TEST(PaperFigure8, RcsSchedulesWideVmOnOnePcpuButBelowNarrowVms) {
  const double wide = availability("rcs", 1, 0);
  const double narrow = availability("rcs", 1, 2);
  EXPECT_GT(wide, 0.02);           // unlike SCS, it runs
  EXPECT_LT(wide, narrow - 0.02);  // but gets less than the 1-VCPU VMs
}

TEST(PaperFigure8, CoSchedulingFairnessImprovesWithPcpus) {
  for (const std::string algorithm : {"scs", "rcs"}) {
    const double unfairness_low =
        availability(algorithm, 1, 2) - availability(algorithm, 1, 0);
    const double unfairness_high =
        availability(algorithm, 4, 2) - availability(algorithm, 4, 0);
    EXPECT_LT(unfairness_high, unfairness_low) << algorithm;
    // At 4 PCPUs / 4 VCPUs everyone is near 100%.
    for (const int vcpu : {0, 1, 2, 3}) {
      EXPECT_GT(availability(algorithm, 4, vcpu), 0.90)
          << algorithm << " vcpu=" << vcpu;
    }
  }
}

// --- Figure 9: PCPU utilization (4 PCPUs, VM sets) ---------------------

double pcpu_util(const std::string& algorithm, const std::vector<int>& vms,
                 int sync_k = 5) {
  const auto result = exp::run_point(shape_spec(algorithm, 4, vms, sync_k),
                                     {{exp::MetricKind::kPcpuUtilization, -1, "u"}});
  return result.metric("u").ci.mean;
}

TEST(PaperFigure9, AllAlgorithmsSaturateWhenVcpusMatchPcpus) {
  for (const std::string algorithm : {"rrs", "scs", "rcs"}) {
    EXPECT_GT(pcpu_util(algorithm, {2, 2}), 0.97) << algorithm;
  }
}

TEST(PaperFigure9, ScsFragmentsWhenOvercommitted) {
  EXPECT_GT(pcpu_util("rrs", {2, 3}), 0.97);
  EXPECT_LT(pcpu_util("scs", {2, 3}), 0.90);
  EXPECT_LT(pcpu_util("scs", {2, 4}), 0.95);
}

TEST(PaperFigure9, RcsMitigatesFragmentationAbove90Percent) {
  EXPECT_GT(pcpu_util("rcs", {2, 3}), 0.90);
  EXPECT_GT(pcpu_util("rcs", {2, 4}), 0.90);
  EXPECT_GT(pcpu_util("rcs", {2, 3}), pcpu_util("scs", {2, 3}) + 0.03);
}

// --- Figure 10: VCPU utilization (4 PCPUs, sync-rate sweep) ------------

double vcpu_util(const std::string& algorithm, const std::vector<int>& vms,
                 int sync_k) {
  const auto result =
      exp::run_point(shape_spec(algorithm, 4, vms, sync_k),
                     {{exp::MetricKind::kMeanVcpuUtilization, -1, "u"}});
  return result.metric("u").ci.mean;
}

TEST(PaperFigure10, NoDifferenceWhenVcpusMatchPcpus) {
  const double rrs = vcpu_util("rrs", {2, 2}, 5);
  const double scs = vcpu_util("scs", {2, 2}, 5);
  const double rcs = vcpu_util("rcs", {2, 2}, 5);
  EXPECT_NEAR(rrs, scs, 0.05);
  EXPECT_NEAR(rrs, rcs, 0.05);
  EXPECT_GT(rrs, 0.85);
}

TEST(PaperFigure10, CoSchedulingBeatsRrsWhenOvercommitted) {
  // Paper: with #VCPU > #PCPU "the co-scheduling algorithms reduce
  // synchronization latency". In our reproduction RCS is the strongest
  // (its guest-aware idle-yield sheds blocked-idle time) and SCS is
  // consistently at-or-above RRS; see EXPERIMENTS.md for the SCS/RCS
  // ordering discussion.
  for (const auto& vms : {std::vector<int>{2, 3}, std::vector<int>{2, 4}}) {
    const double rrs = vcpu_util("rrs", vms, 3);
    const double scs = vcpu_util("scs", vms, 3);
    const double rcs = vcpu_util("rcs", vms, 3);
    EXPECT_GE(scs, rrs - 0.015) << vms[1];
    EXPECT_GT(rcs, rrs + 0.05) << vms[1];
    EXPECT_GT(rcs, scs + 0.03) << vms[1];
  }
}

TEST(PaperFigure10, RrsDegradesAsSyncRateIncreases) {
  const double relaxed_sync = vcpu_util("rrs", {2, 4}, 5);
  const double tight_sync = vcpu_util("rrs", {2, 4}, 2);
  EXPECT_LT(tight_sync, relaxed_sync - 0.02);
}

}  // namespace
}  // namespace vcpusim
