// Parallel execution guarantees across the whole stack: every jobs value
// reproduces the sequential estimates bit for bit (run_point and
// run_sweep), and the simulator's incremental enabling reproduces the
// full-scan trajectory on every shipped scheduler model.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "sched/registry.hpp"
#include "testing/helpers.hpp"
#include "vm/metrics.hpp"

namespace vcpusim {
namespace {

/// Every shipped metric kind (indexed kinds bound to entity 0).
std::vector<exp::MetricRequest> all_metric_kinds() {
  return {
      {exp::MetricKind::kVcpuAvailability, 0, ""},
      {exp::MetricKind::kMeanVcpuAvailability, -1, ""},
      {exp::MetricKind::kPcpuUtilization, -1, ""},
      {exp::MetricKind::kVcpuUtilization, 0, ""},
      {exp::MetricKind::kMeanVcpuUtilization, -1, ""},
      {exp::MetricKind::kVcpuBusyFraction, 0, ""},
      {exp::MetricKind::kMeanVcpuBusyFraction, -1, ""},
      {exp::MetricKind::kVmBlockedFraction, 0, ""},
      {exp::MetricKind::kThroughput, -1, ""},
      {exp::MetricKind::kMeanSpinFraction, -1, ""},
      {exp::MetricKind::kMeanEffectiveUtilization, -1, ""},
  };
}

/// Figure-8 style point (2+1+1 VMs) at test scale.
exp::RunSpec fig8_spec(const std::string& algorithm) {
  exp::RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {2, 1, 1}, 5);
  spec.scheduler = sched::make_factory(algorithm);
  spec.end_time = 600.0;
  spec.warmup = 100.0;
  spec.policy.min_replications = 4;
  spec.policy.max_replications = 7;  // not a jobs multiple: truncated batch
  spec.policy.target_half_width = 1e-9;  // runs to the cap
  return spec;
}

void expect_identical(const stats::ReplicationResult& a,
                      const stats::ReplicationResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].name, b.metrics[m].name);
    EXPECT_EQ(a.metrics[m].ci.mean, b.metrics[m].ci.mean) << a.metrics[m].name;
    EXPECT_EQ(a.metrics[m].ci.half_width, b.metrics[m].ci.half_width)
        << a.metrics[m].name;
  }
}

TEST(ParallelDeterminism, AllMetricKindsBitIdenticalAcrossJobCounts) {
  const auto metrics = all_metric_kinds();
  exp::RunSpec spec = fig8_spec("rrs");
  const auto sequential = exp::run_point(spec, metrics);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    spec.jobs = jobs;
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_identical(sequential, exp::run_point(spec, metrics));
  }
}

TEST(ParallelDeterminism, ConvergenceStopIdenticalAcrossJobCounts) {
  // With a reachable CI target the stopping rule itself is in play:
  // parallel speculation must stop at the sequential stopping point.
  exp::RunSpec spec = fig8_spec("rcs");
  spec.policy.max_replications = 24;
  spec.policy.target_half_width = 0.05;
  const auto metrics =
      std::vector<exp::MetricRequest>{{exp::MetricKind::kMeanVcpuAvailability,
                                       -1, ""}};
  const auto sequential = exp::run_point(spec, metrics);
  spec.jobs = 4;
  expect_identical(sequential, exp::run_point(spec, metrics));
}

TEST(ParallelDeterminism, SweepGridIdenticalAcrossJobCounts) {
  exp::RunSpec base = fig8_spec("rrs");
  base.policy.max_replications = 4;
  const std::vector<exp::SweepPoint> points = {
      {"2pcpu", [](exp::RunSpec& s) {
         s.system = vm::make_symmetric_config(2, {2, 1, 1}, 5);
       }},
      {"4pcpu", [](exp::RunSpec& s) {
         s.system = vm::make_symmetric_config(4, {2, 1, 1}, 5);
       }},
  };
  const exp::MetricRequest metric{exp::MetricKind::kPcpuUtilization, -1, ""};
  const auto sequential =
      exp::run_sweep(base, points, {"rrs", "scs", "rcs"}, metric);
  const auto parallel =
      exp::run_sweep(base, points, {"rrs", "scs", "rcs"}, metric, 4);
  ASSERT_EQ(sequential.cells.size(), parallel.cells.size());
  for (std::size_t r = 0; r < sequential.cells.size(); ++r) {
    ASSERT_EQ(sequential.cells[r].size(), parallel.cells[r].size());
    for (std::size_t c = 0; c < sequential.cells[r].size(); ++c) {
      EXPECT_EQ(sequential.cells[r][c].ci.mean, parallel.cells[r][c].ci.mean)
          << r << "," << c;
      EXPECT_EQ(sequential.cells[r][c].replications,
                parallel.cells[r][c].replications);
    }
  }
}

// ---------------------------------------------------------------------
// Incremental enabling on the shipped models.
// ---------------------------------------------------------------------

struct ShippedOutcome {
  std::uint64_t events;
  std::int64_t jobs;
  double avail;
  double util;
};

ShippedOutcome run_shipped(const std::string& algorithm, bool incremental) {
  auto system = vm::build_system(vm::make_symmetric_config(2, {2, 1}, 4),
                                 sched::make_factory(algorithm)());
  auto avail = vm::mean_vcpu_availability(*system, 50.0);
  auto util = vm::mean_vcpu_utilization(*system, 50.0);
  san::SimulatorConfig config;
  config.end_time = 800.0;
  config.seed = 99;
  config.incremental_enabling = incremental;
  const auto stats =
      san::run_once(*system->model, config, {avail.get(), util.get()});
  return {stats.events, vm::total_completed_jobs(*system),
          avail->time_averaged(800.0), util->time_averaged(800.0)};
}

TEST(IncrementalEnabling, ShippedModelsMatchFullScanForEveryAlgorithm) {
  for (const auto& name : sched::builtin_algorithms()) {
    const auto full = run_shipped(name, false);
    const auto incremental = run_shipped(name, true);
    EXPECT_EQ(full.events, incremental.events) << name;
    EXPECT_EQ(full.jobs, incremental.jobs) << name;
    EXPECT_EQ(full.avail, incremental.avail) << name;
    EXPECT_EQ(full.util, incremental.util) << name;
  }
}

}  // namespace
}  // namespace vcpusim
