// Minimal recursive-descent JSON parser for tests: just enough to
// round-trip the documents the framework emits (metrics registries,
// JSONL trace lines, the algorithms catalog) and assert on their
// structure. Not a general-purpose parser — strict on the grammar the
// emitters produce, throws std::runtime_error with a byte offset on
// anything else.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace vcpusim::testing {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) != 0;
  }
  /// Member access; throws std::runtime_error on missing key / non-object.
  const JsonValue& at(const std::string& key) const {
    if (type != Type::kObject) throw std::runtime_error("not an object");
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("no key '" + key + "'");
    return it->second;
  }
  const JsonValue& at(std::size_t index) const {
    if (type != Type::kArray) throw std::runtime_error("not an array");
    return array.at(index);
  }
};

/// Parse one JSON document (throws std::runtime_error on malformed input
/// or trailing garbage).
inline JsonValue parse_json(const std::string& text) {
  struct Parser {
    const std::string& s;
    std::size_t pos = 0;

    [[noreturn]] void fail(const std::string& what) const {
      throw std::runtime_error("json: " + what + " at byte " +
                               std::to_string(pos));
    }
    void skip_ws() {
      while (pos < s.size() &&
             std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
        ++pos;
      }
    }
    char peek() {
      if (pos >= s.size()) fail("unexpected end");
      return s[pos];
    }
    void expect(char c) {
      if (peek() != c) fail(std::string("expected '") + c + "'");
      ++pos;
    }
    bool consume_word(const char* word) {
      const std::size_t n = std::char_traits<char>::length(word);
      if (s.compare(pos, n, word) != 0) return false;
      pos += n;
      return true;
    }

    std::string parse_string() {
      expect('"');
      std::string out;
      while (true) {
        if (pos >= s.size()) fail("unterminated string");
        const char c = s[pos++];
        if (c == '"') return out;
        if (c == '\\') {
          if (pos >= s.size()) fail("unterminated escape");
          const char e = s[pos++];
          switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
              if (pos + 4 > s.size()) fail("short \\u escape");
              const unsigned long code =
                  std::strtoul(s.substr(pos, 4).c_str(), nullptr, 16);
              pos += 4;
              // The emitters only escape control characters, which fit
              // one byte.
              out += static_cast<char>(code);
              break;
            }
            default: fail("unknown escape");
          }
        } else {
          out += c;
        }
      }
    }

    JsonValue parse_value() {
      skip_ws();
      JsonValue v;
      const char c = peek();
      if (c == '{') {
        v.type = JsonValue::Type::kObject;
        ++pos;
        skip_ws();
        if (peek() == '}') {
          ++pos;
          return v;
        }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.object[key] = parse_value();
          skip_ws();
          if (peek() == ',') {
            ++pos;
            continue;
          }
          expect('}');
          return v;
        }
      }
      if (c == '[') {
        v.type = JsonValue::Type::kArray;
        ++pos;
        skip_ws();
        if (peek() == ']') {
          ++pos;
          return v;
        }
        while (true) {
          v.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos;
            continue;
          }
          expect(']');
          return v;
        }
      }
      if (c == '"') {
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      if (consume_word("true")) {
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }
      if (consume_word("false")) {
        v.type = JsonValue::Type::kBool;
        return v;
      }
      if (consume_word("null")) return v;
      // number
      const std::size_t start = pos;
      if (peek() == '-') ++pos;
      while (pos < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[pos])) != 0 ||
              s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
              s[pos] == '+' || s[pos] == '-')) {
        ++pos;
      }
      if (pos == start) fail("unexpected character");
      char* end = nullptr;
      const std::string num = s.substr(start, pos - start);
      v.number = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) fail("bad number");
      v.type = JsonValue::Type::kNumber;
      return v;
    }
  };

  Parser parser{text};
  JsonValue v = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing garbage");
  return v;
}

}  // namespace vcpusim::testing
