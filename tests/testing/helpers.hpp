// Shared test utilities: a scriptable scheduler test-double and helpers
// to build and run small virtualization systems deterministically.
#pragma once

#include <functional>
#include <random>
#include <utility>

#include "san/simulator.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim::testing {

/// Seeded pseudo-random source for property-based tests. Deliberately
/// separate from stats::Rng (the code under test): a property test must
/// not derive its inputs from the machinery it is checking. Always seed
/// explicitly so failures reproduce; encode the seed in the test name or
/// loop index.
class PropertyRng {
 public:
  explicit PropertyRng(std::uint64_t seed) : engine_(seed) {}

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  int uniform_int(int lo, int hi) {  // inclusive bounds
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  bool chance(double p) { return uniform(0.0, 1.0) < p; }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Scheduler driven by a lambda — lets tests script hypervisor decisions
/// tick by tick and observe the exact snapshots the framework passes.
class LambdaScheduler final : public vm::Scheduler {
 public:
  using Fn = std::function<bool(std::span<vm::VCPU_host_external>,
                                std::span<vm::PCPU_external>, long)>;

  explicit LambdaScheduler(Fn fn, std::string name = "lambda")
      : fn_(std::move(fn)), name_(std::move(name)) {}

  bool schedule(std::span<vm::VCPU_host_external> vcpus,
                std::span<vm::PCPU_external> pcpus, long timestamp) override {
    return fn_(vcpus, pcpus, timestamp);
  }

  std::string name() const override { return name_; }

 private:
  Fn fn_;
  std::string name_;
};

inline vm::SchedulerPtr make_lambda_scheduler(LambdaScheduler::Fn fn,
                                              std::string name = "lambda") {
  return std::make_unique<LambdaScheduler>(std::move(fn), std::move(name));
}

/// A scheduler that never assigns anything (all VCPUs stay INACTIVE).
inline vm::SchedulerPtr make_null_scheduler() {
  return make_lambda_scheduler(
      [](auto, auto, long) { return true; }, "null");
}

/// Decorator recording the snapshot passed to (and decisions returned
/// by) an inner scheduler at every tick — used for per-tick invariant
/// checks (gang co-start, skew bounds, run-to-completion, ...).
class SpyScheduler final : public vm::Scheduler {
 public:
  struct Tick {
    long timestamp;
    std::vector<vm::VCPU_host_external> before;  ///< snapshot pre-decision
    std::vector<vm::VCPU_host_external> after;   ///< with decisions filled in
    std::vector<vm::PCPU_external> pcpus;
  };

  explicit SpyScheduler(vm::SchedulerPtr inner) : inner_(std::move(inner)) {}

  void on_attach(const vm::SystemTopology& topology) override {
    inner_->on_attach(topology);
  }

  bool schedule(std::span<vm::VCPU_host_external> vcpus,
                std::span<vm::PCPU_external> pcpus, long timestamp) override {
    Tick tick;
    tick.timestamp = timestamp;
    tick.before.assign(vcpus.begin(), vcpus.end());
    tick.pcpus.assign(pcpus.begin(), pcpus.end());
    const bool ok = inner_->schedule(vcpus, pcpus, timestamp);
    tick.after.assign(vcpus.begin(), vcpus.end());
    ticks_->push_back(std::move(tick));
    return ok;
  }

  std::string name() const override { return inner_->name(); }

  /// Shared so the recording survives the system taking ownership.
  std::shared_ptr<std::vector<Tick>> ticks() const { return ticks_; }

 private:
  vm::SchedulerPtr inner_;
  std::shared_ptr<std::vector<Tick>> ticks_ =
      std::make_shared<std::vector<Tick>>();
};

/// Run `system`'s model for `end_time` ticks with the given rewards.
inline san::RunStats run_system(vm::VirtualSystem& system, san::Time end_time,
                                std::uint64_t seed = 1,
                                std::vector<san::RewardVariable*> rewards = {}) {
  san::SimulatorConfig config;
  config.end_time = end_time;
  config.seed = seed;
  return san::run_once(*system.model, config, std::move(rewards));
}

}  // namespace vcpusim::testing
