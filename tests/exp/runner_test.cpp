#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"

namespace vcpusim::exp {
namespace {

RunSpec quick_spec(const std::string& algorithm = "rrs") {
  RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {1, 1}, 5);
  spec.scheduler = sched::make_factory(algorithm);
  spec.end_time = 300.0;
  spec.warmup = 50.0;
  spec.policy.min_replications = 3;
  spec.policy.max_replications = 6;
  spec.policy.target_half_width = 0.05;
  return spec;
}

TEST(Runner, DefaultLabels) {
  EXPECT_EQ(default_label({MetricKind::kVcpuAvailability, 2, ""}),
            "vcpu_availability[2]");
  EXPECT_EQ(default_label({MetricKind::kMeanVcpuAvailability, -1, ""}),
            "mean_vcpu_availability");
  EXPECT_EQ(default_label({MetricKind::kPcpuUtilization, -1, ""}),
            "pcpu_utilization");
  EXPECT_EQ(default_label({MetricKind::kVmBlockedFraction, 1, ""}),
            "vm_blocked_fraction[1]");
  EXPECT_EQ(default_label({MetricKind::kThroughput, -1, ""}), "throughput");
}

TEST(Runner, RunsAllMetricKinds) {
  const auto result = run_point(
      quick_spec(),
      {{MetricKind::kVcpuAvailability, 0, ""},
       {MetricKind::kMeanVcpuAvailability, -1, ""},
       {MetricKind::kPcpuUtilization, -1, ""},
       {MetricKind::kVcpuUtilization, 0, ""},
       {MetricKind::kMeanVcpuUtilization, -1, ""},
       {MetricKind::kVmBlockedFraction, 0, ""},
       {MetricKind::kThroughput, -1, ""}});
  EXPECT_EQ(result.metrics.size(), 7u);
  // 2 VCPUs on 2 PCPUs: everything is ACTIVE all the time.
  EXPECT_NEAR(result.metric("mean_vcpu_availability").ci.mean, 1.0, 1e-9);
  EXPECT_GT(result.metric("throughput").ci.mean, 0.0);
  // Utilization of PCPUs equals availability here (1 VCPU per PCPU).
  EXPECT_NEAR(result.metric("pcpu_utilization").ci.mean, 1.0, 1e-9);
}

TEST(Runner, CustomLabelsRespected) {
  const auto result = run_point(
      quick_spec(), {{MetricKind::kPcpuUtilization, -1, "my_metric"}});
  EXPECT_NO_THROW(result.metric("my_metric"));
}

TEST(Runner, DeterministicForSameSeed) {
  const auto a = run_point(quick_spec(), {{MetricKind::kThroughput, -1, ""}});
  const auto b = run_point(quick_spec(), {{MetricKind::kThroughput, -1, ""}});
  EXPECT_DOUBLE_EQ(a.metric("throughput").ci.mean,
                   b.metric("throughput").ci.mean);
}

TEST(Runner, SeedChangesResult) {
  auto spec = quick_spec();
  const auto a = run_point(spec, {{MetricKind::kThroughput, -1, ""}});
  spec.base_seed = 999;
  const auto b = run_point(spec, {{MetricKind::kThroughput, -1, ""}});
  EXPECT_NE(a.metric("throughput").ci.mean, b.metric("throughput").ci.mean);
}

TEST(Runner, ValidationErrors) {
  RunSpec spec = quick_spec();
  EXPECT_THROW(run_point(spec, {}), std::invalid_argument);
  spec.scheduler = nullptr;
  EXPECT_THROW(run_point(spec, {{MetricKind::kThroughput, -1, ""}}),
               std::invalid_argument);
  spec = quick_spec();
  spec.warmup = spec.end_time;
  EXPECT_THROW(run_point(spec, {{MetricKind::kThroughput, -1, ""}}),
               std::invalid_argument);
}

TEST(Runner, FreshSchedulerPerReplicationWhenRebuilding) {
  // With the rebuild path, a factory that counts instantiations shows
  // one fresh scheduler per replication (no shared state).
  int instances = 0;
  RunSpec spec = quick_spec();
  spec.reuse_systems = false;
  spec.scheduler = [&instances]() {
    ++instances;
    return sched::make_factory("rrs")();
  };
  run_point(spec, {{MetricKind::kThroughput, -1, ""}});
  EXPECT_GE(instances, 3);
}

TEST(Runner, PooledRunBuildsOneSchedulerPerExecutorSlot) {
  // The zero-rebuild engine reuses the built system — and its scheduler,
  // via Scheduler::on_reset — across replications: a 1-job run
  // instantiates exactly one scheduler however many replications the
  // stopping rule takes.
  int instances = 0;
  RunSpec spec = quick_spec();
  ASSERT_TRUE(spec.reuse_systems);  // pooled is the default
  spec.scheduler = [&instances]() {
    ++instances;
    return sched::make_factory("rrs")();
  };
  const auto result = run_point(spec, {{MetricKind::kThroughput, -1, ""}});
  EXPECT_GE(result.replications, 3u);
  EXPECT_EQ(instances, 1);
}

}  // namespace
}  // namespace vcpusim::exp
