#include "exp/table.hpp"

#include <gtest/gtest.h>

namespace vcpusim::exp {
namespace {

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"algorithm", "x"});
  t.add_row({"rrs", "1"});
  t.add_row({"relaxed-co", "2"});
  const auto s = t.render();
  EXPECT_NE(s.find("| algorithm  | x |"), std::string::npos);
  EXPECT_NE(s.find("| rrs        | 1 |"), std::string::npos);
  EXPECT_NE(s.find("| relaxed-co | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",\"quote\"\"inside\"\n"),
            std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.831), "83.1%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(0.12345, 2), "12.35%");
}

TEST(Format, CiPercent) {
  stats::ConfidenceInterval ci;
  ci.mean = 0.5;
  ci.half_width = 0.012;
  EXPECT_EQ(format_ci_percent(ci), "50.0% ±1.2");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace vcpusim::exp
