// Paired-comparison API: CRN seed discipline, paired-difference CIs and
// the variance reduction they buy over independent runs.
#include "exp/compare.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "san/experiment.hpp"
#include "sched/registry.hpp"

namespace vcpusim::exp {
namespace {

/// Two VMs of two VCPUs on two PCPUs with 1:5 sync — contended enough
/// that co-scheduling and round-robin genuinely differ.
RunSpec contended_spec() {
  RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {2, 2}, 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.end_time = 300.0;
  spec.warmup = 50.0;
  spec.policy.min_replications = 6;
  spec.policy.max_replications = 6;  // pinned: paired and unpaired at equal n
  spec.policy.target_half_width = 1e-9;
  return spec;
}

const std::vector<MetricRequest> kMetrics = {
    {MetricKind::kMeanVcpuAvailability, -1, ""},
    {MetricKind::kThroughput, -1, ""}};

TEST(Compare, RejectsDegenerateInput) {
  const auto spec = contended_spec();
  EXPECT_THROW(compare_points(spec, {"rrs"}, kMetrics), std::invalid_argument);
  EXPECT_THROW(compare_points(spec, {}, kMetrics), std::invalid_argument);
  EXPECT_THROW(compare_points(spec, {"rrs", "scs"}, {}), std::invalid_argument);
}

TEST(Compare, SeedStreamsAreSharedAndReproducible) {
  // The CRN discipline: replication r of EVERY algorithm runs the seed
  // san::replication_seed(base_seed, r) — the published seeds must match
  // that derivation exactly, and be independent of the algorithm list.
  const auto spec = contended_spec();
  const auto ab = compare_points(spec, {"rrs", "scs"}, kMetrics);
  ASSERT_EQ(ab.seeds.size(), ab.replications);
  for (std::size_t r = 0; r < ab.seeds.size(); ++r) {
    EXPECT_EQ(ab.seeds[r], san::replication_seed(spec.base_seed, r));
  }
  const auto abc = compare_points(spec, {"rrs", "scs", "bvt"}, kMetrics);
  EXPECT_EQ(ab.seeds, abc.seeds);
}

TEST(Compare, BaselineEstimatesMatchRunPoint) {
  // Algorithm 0 runs under the spec's own policy/controller, so its
  // estimates must be bit-identical to a plain run_point of the same
  // spec.
  const auto spec = contended_spec();
  const auto direct = run_point(spec, kMetrics);
  const auto result = compare_points(spec, {"rrs", "scs"}, kMetrics);
  EXPECT_EQ(result.baseline, "rrs");
  EXPECT_EQ(result.replications, direct.replications);
  ASSERT_EQ(result.metric_names.size(), kMetrics.size());
  for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
    EXPECT_EQ(result.estimates[0][m].mean,
              direct.metric(result.metric_names[m]).ci.mean);
    EXPECT_EQ(result.estimates[0][m].half_width,
              direct.metric(result.metric_names[m]).ci.half_width);
  }
}

TEST(Compare, PairedIntervalsAreTighterThanIndependent) {
  // The ISSUE's headline claim: under CRN the paired-difference CI is
  // tighter than the interval independent runs would give at the same
  // replication count, because the algorithms' responses to a common
  // workload realization are positively correlated.
  const auto result =
      compare_points(contended_spec(), {"rrs", "scs"}, kMetrics);
  bool some_variance = false;
  for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
    const auto& d = result.delta(1, m);
    SCOPED_TRACE(result.metric_names[m]);
    EXPECT_LE(d.paired.half_width, d.unpaired_half_width);
    if (d.unpaired_half_width > 0) {
      some_variance = true;
      EXPECT_LT(d.paired.half_width, d.unpaired_half_width);
      EXPECT_GT(d.correlation, 0.0);
    }
  }
  EXPECT_TRUE(some_variance);
}

TEST(Compare, AntitheticControllerComposesWithCrn) {
  // Antithetic + CRN: the controller pairs mirrored replications inside
  // each algorithm while the seeds stay common across algorithms. The
  // paired interval must still be the tight one.
  auto spec = contended_spec();
  spec.controller = stats::ControllerKind::kAntithetic;
  const auto result = compare_points(spec, {"rrs", "scs"}, kMetrics);
  EXPECT_EQ(result.controller, "antithetic");
  EXPECT_EQ(result.replications % 2, 0u);
  // Antithetic streams: replications {2k, 2k+1} share seed stream k.
  for (std::size_t r = 0; r < result.seeds.size(); ++r) {
    EXPECT_EQ(result.seeds[r], san::replication_seed(spec.base_seed, r / 2));
  }
  for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
    const auto& d = result.delta(1, m);
    SCOPED_TRACE(result.metric_names[m]);
    EXPECT_LE(d.paired.half_width, d.unpaired_half_width);
  }
}

TEST(Compare, DeltaAccessorRejectsBaseline) {
  const auto result =
      compare_points(contended_spec(), {"rrs", "scs"}, kMetrics);
  EXPECT_THROW(result.delta(0, 0), std::out_of_range);
  EXPECT_NO_THROW(result.delta(1, 0));
}

TEST(Compare, TablesCoverEveryAlgorithmAndMetric) {
  const auto result =
      compare_points(contended_spec(), {"rrs", "scs", "bvt"}, kMetrics);
  const Table estimates = result.estimates_table();
  EXPECT_EQ(estimates.rows(), 3u);
  const Table deltas = result.deltas_table();
  EXPECT_EQ(deltas.rows(), 2u);  // every non-baseline algorithm
  // Every algorithm and metric appears in the rendering.
  const std::string rendered = estimates.render() + deltas.render();
  for (const char* token : {"rrs", "scs", "bvt", "mean_vcpu_availability",
                            "throughput", "vs rrs"}) {
    EXPECT_NE(rendered.find(token), std::string::npos) << token;
  }
}

TEST(Compare, DeterministicAcrossCallsAndJobs) {
  auto spec = contended_spec();
  const auto a = compare_points(spec, {"rrs", "scs"}, kMetrics);
  spec.jobs = 4;
  const auto b = compare_points(spec, {"rrs", "scs"}, kMetrics);
  EXPECT_EQ(a.replications, b.replications);
  for (std::size_t alg = 0; alg < a.algorithms.size(); ++alg) {
    for (std::size_t m = 0; m < a.metric_names.size(); ++m) {
      EXPECT_EQ(a.estimates[alg][m].mean, b.estimates[alg][m].mean);
      EXPECT_EQ(a.estimates[alg][m].half_width, b.estimates[alg][m].half_width);
    }
  }
  for (std::size_t m = 0; m < a.metric_names.size(); ++m) {
    EXPECT_EQ(a.delta(1, m).paired.mean, b.delta(1, m).paired.mean);
    EXPECT_EQ(a.delta(1, m).paired.half_width, b.delta(1, m).paired.half_width);
  }
}

}  // namespace
}  // namespace vcpusim::exp
