#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"

namespace vcpusim::exp {
namespace {

RunSpec quick_base() {
  RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {2, 1, 1}, 5);
  spec.end_time = 400.0;
  spec.warmup = 50.0;
  spec.policy.min_replications = 3;
  spec.policy.max_replications = 5;
  spec.policy.target_half_width = 0.05;
  return spec;
}

std::vector<SweepPoint> pcpu_points() {
  std::vector<SweepPoint> points;
  for (int pcpus : {1, 2, 4}) {
    points.push_back({std::to_string(pcpus) + " PCPUs",
                      [pcpus](RunSpec& spec) { spec.system.num_pcpus = pcpus; }});
  }
  return points;
}

TEST(Sweep, Validation) {
  const auto base = quick_base();
  const MetricRequest metric{MetricKind::kMeanVcpuAvailability, -1, ""};
  EXPECT_THROW(run_sweep(base, {}, {"rrs"}, metric), std::invalid_argument);
  EXPECT_THROW(run_sweep(base, pcpu_points(), {}, metric),
               std::invalid_argument);
  EXPECT_THROW(run_sweep(base, {{"bad", nullptr}}, {"rrs"}, metric),
               std::invalid_argument);
  EXPECT_THROW(run_sweep(base, pcpu_points(), {"warp"}, metric),
               std::invalid_argument);
}

TEST(Sweep, GridShapeAndLabels) {
  const auto result =
      run_sweep(quick_base(), pcpu_points(), {"rrs", "scs"},
                {MetricKind::kMeanVcpuAvailability, -1, ""});
  EXPECT_EQ(result.row_labels,
            (std::vector<std::string>{"1 PCPUs", "2 PCPUs", "4 PCPUs"}));
  EXPECT_EQ(result.column_labels, (std::vector<std::string>{"rrs", "scs"}));
  ASSERT_EQ(result.cells.size(), 3u);
  ASSERT_EQ(result.cells[0].size(), 2u);
  for (const auto& row : result.cells) {
    for (const auto& cell : row) {
      EXPECT_GE(cell.replications, 3u);
    }
  }
}

TEST(Sweep, ValuesReproduceTheFigure8Shape) {
  const auto result =
      run_sweep(quick_base(), pcpu_points(), {"rrs", "scs"},
                {MetricKind::kMeanVcpuAvailability, -1, ""});
  // RRS mean availability scales with pcpus/4.
  EXPECT_NEAR(result.cell(0, 0).ci.mean, 0.25, 0.03);
  EXPECT_NEAR(result.cell(1, 0).ci.mean, 0.50, 0.03);
  EXPECT_NEAR(result.cell(2, 0).ci.mean, 1.00, 0.01);
  // SCS at 1 PCPU starves the wide VM: mean availability ~ (0+0+.5+.5)/4.
  EXPECT_NEAR(result.cell(0, 1).ci.mean, 0.25, 0.05);
}

TEST(Sweep, CellsMatchDirectRunPoint) {
  const auto base = quick_base();
  const MetricRequest metric{MetricKind::kPcpuUtilization, -1, ""};
  const auto result = run_sweep(base, pcpu_points(), {"rrs"}, metric);
  RunSpec direct = base;
  direct.system.num_pcpus = 2;
  direct.scheduler = sched::make_factory("rrs");
  const auto expected = run_point(direct, {metric});
  EXPECT_DOUBLE_EQ(result.cell(1, 0).ci.mean,
                   expected.metrics.front().ci.mean);
}

TEST(Sweep, TableRendering) {
  const auto result =
      run_sweep(quick_base(), pcpu_points(), {"rrs"},
                {MetricKind::kMeanVcpuAvailability, -1, ""});
  const auto rendered = result.to_table("PCPUs").render();
  EXPECT_NE(rendered.find("| PCPUs"), std::string::npos);
  EXPECT_NE(rendered.find("rrs"), std::string::npos);
  EXPECT_NE(rendered.find("1 PCPUs"), std::string::npos);
  EXPECT_NE(rendered.find('%'), std::string::npos);
}

}  // namespace
}  // namespace vcpusim::exp
