// run_point / run_sweep observability contract: the metrics registry is
// populated with the documented names, its deterministic entries do not
// depend on the worker count, profiling exports phase timers, and the
// trace forwarded to a RunSpec sink is replication-ordered.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "san/trace.hpp"
#include "sched/registry.hpp"
#include "stats/metrics.hpp"
#include "vm/system_builder.hpp"

namespace vcpusim::exp {
namespace {

RunSpec base_spec(std::size_t jobs = 1) {
  RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {2, 2}, 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.end_time = 15.0;
  spec.warmup = 2.0;
  spec.base_seed = 99;
  spec.jobs = jobs;
  spec.policy.min_replications = 3;
  spec.policy.max_replications = 3;
  return spec;
}

std::vector<MetricRequest> availability() {
  return {{MetricKind::kMeanVcpuAvailability, -1, "avail"}};
}

TEST(MetricsExport, RunPointPopulatesDocumentedNames) {
  stats::MetricsRegistry reg;
  RunSpec spec = base_spec();
  spec.metrics = &reg;
  const auto result = run_point(spec, availability());

  for (const char* name :
       {"sim.events", "sim.enabling_evals", "sched.ticks",
        "sched.schedules_in", "sched.schedules_out", "sched.preemptions",
        "run.replications", "run.controller.batches",
        "executor.speculative_waste", "executor.batches"}) {
    EXPECT_TRUE(reg.has(name)) << name;
  }
  EXPECT_GT(reg.counter_value("sim.events"), 0U);
  EXPECT_GT(reg.counter_value("sched.ticks"), 0U);
  EXPECT_EQ(reg.counter_value("run.replications"), result.replications);
  // The controller flag counter: exactly one run.controller.<name> entry.
  EXPECT_TRUE(reg.has("run.controller.fixed"));
  EXPECT_EQ(reg.counter_value("run.controller.fixed"), 1U);
  EXPECT_FALSE(reg.has("run.controller.adaptive"));
  EXPECT_EQ(reg.counter_value("executor.speculative_waste"),
            result.speculative_waste());
  EXPECT_EQ(reg.gauge_value("executor.jobs"), 1.0);
  EXPECT_EQ(reg.summary_values("sim.events_per_replication").count(),
            result.replications);
  // Per-metric sample summaries mirror the replication estimates.
  EXPECT_EQ(reg.summary_values("metric.avail").count(), result.replications);
  EXPECT_NEAR(reg.summary_values("metric.avail").mean(),
              result.metrics.at(0).samples.mean(), 1e-12);
}

TEST(MetricsExport, DeterministicEntriesIdenticalAcrossJobs) {
  // Everything except the executor.* bookkeeping and wall-clock profile
  // must be a pure function of the replication set. Compare the full
  // JSON after erasing only those whitelisted nondeterministic entries
  // by rebuilding registries without them.
  std::vector<std::string> jsons;
  std::vector<std::uint64_t> sim_events;
  for (const std::size_t jobs : {1u, 8u}) {
    stats::MetricsRegistry reg;
    RunSpec spec = base_spec(jobs);
    spec.metrics = &reg;
    run_point(spec, availability());
    sim_events.push_back(reg.counter_value("sim.events"));

    stats::MetricsRegistry deterministic;
    for (const char* name :
         {"sim.events", "sim.enabling_evals", "sched.ticks",
          "sched.schedules_in", "sched.schedules_out", "sched.preemptions",
          "run.replications"}) {
      deterministic.counter(name).add(reg.counter_value(name));
    }
    deterministic.summary("metric.avail") =
        reg.summary_values("metric.avail");
    jsons.push_back(deterministic.to_json());
  }
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(sim_events[0], sim_events[1]);
}

TEST(MetricsExport, ControllerFlagFollowsTheSelectedController) {
  stats::MetricsRegistry reg;
  RunSpec spec = base_spec();
  spec.controller = stats::ControllerKind::kAdaptive;
  spec.metrics = &reg;
  run_point(spec, availability());
  EXPECT_TRUE(reg.has("run.controller.adaptive"));
  EXPECT_FALSE(reg.has("run.controller.fixed"));
  // Adaptive at jobs = 1 dispatches one replication at a time: no
  // speculative work at all.
  EXPECT_EQ(reg.counter_value("executor.speculative_waste"), 0U);
}

TEST(MetricsExport, ProfileExportAppearsOnlyWhenRequested) {
  stats::MetricsRegistry plain;
  RunSpec spec = base_spec();
  spec.metrics = &plain;
  run_point(spec, availability());
  EXPECT_FALSE(plain.has("profile.fire.calls"));

  stats::MetricsRegistry profiled;
  spec.metrics = &profiled;
  spec.profile = true;
  run_point(spec, availability());
  EXPECT_TRUE(profiled.has("profile.fire.calls"));
  EXPECT_TRUE(profiled.has("profile.fire.ns"));
  EXPECT_GT(profiled.counter_value("profile.fire.calls"), 0U);
}

/// Minimal collecting sink for the forwarding contract.
class CollectingSink final : public san::TraceSink {
 public:
  CollectingSink() : san::TraceSink(san::kTraceAll) {}
  void on_event(const san::TraceEvent& event) override {
    if (event.category == san::TraceCategory::kMarker &&
        event.name == "replication") {
      markers.push_back(event.a);
    }
    ++events;
  }
  std::vector<std::int64_t> markers;
  std::size_t events = 0;
};

TEST(MetricsExport, TraceForwardedInReplicationOrderEvenWhenParallel) {
  CollectingSink sink;
  RunSpec spec = base_spec(/*jobs=*/8);
  spec.trace = &sink;
  const auto result = run_point(spec, availability());

  // One marker per kept replication, in index order, regardless of the
  // order workers finished in.
  std::vector<std::int64_t> expected;
  for (std::size_t i = 0; i < result.replications; ++i) {
    expected.push_back(static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(sink.markers, expected);
  EXPECT_GT(sink.events, result.replications);
}

TEST(MetricsExport, SweepFoldsCellCounters) {
  stats::MetricsRegistry reg;
  RunSpec base = base_spec();
  base.metrics = &reg;
  const std::vector<SweepPoint> points = {
      {"4vcpu", [](RunSpec& s) { s.system = vm::make_symmetric_config(2, {2, 2}, 5); }},
      {"3vcpu", [](RunSpec& s) { s.system = vm::make_symmetric_config(2, {2, 1}, 5); }},
  };
  const auto result = run_sweep(base, points, {"rrs", "fifo"},
                                availability().front());

  EXPECT_EQ(result.row_labels.size(), 2U);
  EXPECT_EQ(result.column_labels.size(), 2U);
  EXPECT_EQ(reg.counter_value("sweep.cells"), 4U);
  EXPECT_EQ(reg.counter_value("sweep.points"), 2U);
  EXPECT_EQ(reg.counter_value("sweep.algorithms"), 2U);
  EXPECT_EQ(reg.counter_value("sweep.replications"), 4U * 3U);
  // min == max == 3 at jobs 1: no cell speculates past its stopping index.
  EXPECT_TRUE(reg.has("sweep.speculative_waste"));
  EXPECT_EQ(reg.counter_value("sweep.speculative_waste"), 0U);
  // Per-cell sim.* counters are deliberately NOT folded (the registry
  // is not thread-safe and cells run concurrently).
  EXPECT_FALSE(reg.has("sim.events"));
}

}  // namespace
}  // namespace vcpusim::exp
