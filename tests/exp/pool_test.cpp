// Zero-rebuild replication engine: the pooled path (reuse_systems, the
// default) must be bit-identical to the legacy build-per-replication
// path — samples, confidence intervals, structured JSONL trace bytes,
// RunStats counters (including enabling_evals) — for every builtin
// algorithm, both enabling modes and any jobs value. These tests are
// the enforcement of the invariant docs/PERFORMANCE.md documents.
#include "exp/pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "sched/registry.hpp"
#include "stats/metrics.hpp"
#include "trace/sinks.hpp"

namespace vcpusim::exp {
namespace {

RunSpec pool_spec() {
  RunSpec spec;
  // Figure-8-style shape: 2 PCPUs, three VMs (2+1+1 VCPUs), sync 1:5 —
  // contended enough that algorithms actually differ.
  spec.system = vm::make_symmetric_config(2, {2, 1, 1}, 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.end_time = 200.0;
  spec.warmup = 40.0;
  spec.base_seed = 20260805;
  // Fixed replication count: identical work on both paths.
  spec.policy.min_replications = 4;
  spec.policy.max_replications = 4;
  spec.policy.target_half_width = 1e-12;
  return spec;
}

const std::vector<MetricRequest>& headline_metrics() {
  static const std::vector<MetricRequest> kMetrics = {
      {MetricKind::kMeanVcpuAvailability, -1, "avail"},
      {MetricKind::kPcpuUtilization, -1, "pcpu"},
      {MetricKind::kMeanVcpuUtilization, -1, "vcpu"},
      {MetricKind::kThroughput, -1, "tput"},
  };
  return kMetrics;
}

struct Outcome {
  stats::ReplicationResult result;
  std::uint64_t sim_events = 0;
  std::uint64_t enabling_evals = 0;
  std::uint64_t sched_ticks = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t pool_builds = 0;
  std::uint64_t pool_reuses = 0;
  std::string trace;
};

Outcome run_mode(RunSpec spec, bool reuse,
                 const std::vector<MetricRequest>& metrics,
                 bool with_trace = false) {
  spec.reuse_systems = reuse;
  stats::MetricsRegistry registry;
  spec.metrics = &registry;
  std::ostringstream os;
  trace::JsonlSink sink(os);
  if (with_trace) spec.trace = &sink;
  Outcome out;
  out.result = run_point(spec, metrics);
  if (with_trace) sink.finish();
  out.trace = os.str();
  out.sim_events = registry.counter("sim.events").value();
  out.enabling_evals = registry.counter("sim.enabling_evals").value();
  out.sched_ticks = registry.counter("sched.ticks").value();
  out.preemptions = registry.counter("sched.preemptions").value();
  if (registry.has("executor.pool_builds")) {
    out.pool_builds = registry.counter("executor.pool_builds").value();
    out.pool_reuses = registry.counter("executor.pool_reuses").value();
  }
  return out;
}

void expect_bit_identical(const Outcome& rebuild, const Outcome& pooled) {
  EXPECT_EQ(pooled.result.replications, rebuild.result.replications);
  EXPECT_EQ(pooled.result.converged, rebuild.result.converged);
  ASSERT_EQ(pooled.result.metrics.size(), rebuild.result.metrics.size());
  for (std::size_t i = 0; i < rebuild.result.metrics.size(); ++i) {
    const auto& a = rebuild.result.metrics[i];
    const auto& b = pooled.result.metrics[i];
    SCOPED_TRACE("metric " + a.name);
    EXPECT_EQ(b.name, a.name);
    // EXPECT_EQ on doubles is exact — the contract is bit-identity, not
    // tolerance.
    EXPECT_EQ(b.samples.count(), a.samples.count());
    EXPECT_EQ(b.samples.mean(), a.samples.mean());
    EXPECT_EQ(b.samples.sample_variance(), a.samples.sample_variance());
    EXPECT_EQ(b.samples.min(), a.samples.min());
    EXPECT_EQ(b.samples.max(), a.samples.max());
    EXPECT_EQ(b.ci.mean, a.ci.mean);
    EXPECT_EQ(b.ci.half_width, a.ci.half_width);
  }
  EXPECT_EQ(pooled.sim_events, rebuild.sim_events);
  EXPECT_EQ(pooled.enabling_evals, rebuild.enabling_evals)
      << "the reused simulator must perform exactly the rebuild path's "
         "enabling work";
  EXPECT_EQ(pooled.sched_ticks, rebuild.sched_ticks);
  EXPECT_EQ(pooled.preemptions, rebuild.preemptions);
  EXPECT_EQ(pooled.trace, rebuild.trace)
      << "structured trace byte streams diverge";
}

TEST(PoolIdentity, MatchesRebuildForEveryAlgorithmEnablingModeAndJobs) {
  for (const auto& algorithm : sched::builtin_algorithms()) {
    for (const bool incremental : {true, false}) {
      for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        SCOPED_TRACE(algorithm + (incremental ? "/incremental" : "/full-scan") +
                     "/jobs=" + std::to_string(jobs));
        RunSpec spec = pool_spec();
        spec.scheduler = sched::make_factory(algorithm);
        spec.incremental_enabling = incremental;
        spec.jobs = jobs;
        const auto rebuild =
            run_mode(spec, /*reuse=*/false, headline_metrics(), true);
        const auto pooled =
            run_mode(spec, /*reuse=*/true, headline_metrics(), true);
        expect_bit_identical(rebuild, pooled);
      }
    }
  }
}

TEST(PoolIdentity, MatchesRebuildForEveryMetricKind) {
  RunSpec spec = pool_spec();
  for (auto& vmc : spec.system.vms) vmc.spinlock.enabled = true;
  spec.jobs = 8;
  const std::vector<MetricRequest> all_kinds = {
      {MetricKind::kVcpuAvailability, 0, ""},
      {MetricKind::kMeanVcpuAvailability, -1, ""},
      {MetricKind::kPcpuUtilization, -1, ""},
      {MetricKind::kVcpuUtilization, 0, ""},
      {MetricKind::kMeanVcpuUtilization, -1, ""},
      {MetricKind::kVcpuBusyFraction, 0, ""},
      {MetricKind::kMeanVcpuBusyFraction, -1, ""},
      {MetricKind::kVmBlockedFraction, 0, ""},
      {MetricKind::kThroughput, -1, ""},
      {MetricKind::kMeanSpinFraction, -1, ""},
      {MetricKind::kMeanEffectiveUtilization, -1, ""},
  };
  const auto rebuild = run_mode(spec, /*reuse=*/false, all_kinds);
  const auto pooled = run_mode(spec, /*reuse=*/true, all_kinds);
  expect_bit_identical(rebuild, pooled);
}

TEST(PoolIdentity, SharedExternalPoolStaysIdenticalAcrossRuns) {
  // State-leak check: the SAME built system serves three consecutive
  // runs off one external pool; every run must still match a fresh
  // rebuild run bit for bit, and the second/third runs must not build.
  RunSpec spec = pool_spec();
  const auto reference = run_mode(spec, /*reuse=*/false, headline_metrics(),
                                  true);
  SystemPool pool(spec.system);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    RunSpec pooled_spec = spec;
    pooled_spec.pool = &pool;
    const auto pooled =
        run_mode(pooled_spec, /*reuse=*/true, headline_metrics(), true);
    expect_bit_identical(reference, pooled);
  }
  // jobs=1: one slot, built once, reused by every later checkout.
  EXPECT_EQ(pool.builds(), 1u);
  EXPECT_EQ(pool.reuses(), 11u);  // 3 runs x 4 reps, minus the one build
}

TEST(PoolCounters, PrivatePoolExportsBuildAndReuseDeltas) {
  RunSpec spec = pool_spec();
  const auto pooled = run_mode(spec, /*reuse=*/true, headline_metrics());
  EXPECT_EQ(pooled.pool_builds, 1u);
  EXPECT_EQ(pooled.pool_reuses, 3u);
  const auto rebuild = run_mode(spec, /*reuse=*/false, headline_metrics());
  EXPECT_EQ(rebuild.pool_builds, 0u);
  EXPECT_EQ(rebuild.pool_reuses, 0u);
}

TEST(PoolCounters, LintBuildSeedsThePool) {
  // The lint fail-fast build is donated to the pool instead of being
  // thrown away: still exactly one build, and every replication —
  // including the first — counts as a reuse.
  RunSpec spec = pool_spec();
  spec.lint = true;
  const auto pooled = run_mode(spec, /*reuse=*/true, headline_metrics());
  EXPECT_EQ(pooled.pool_builds, 1u);
  EXPECT_EQ(pooled.pool_reuses, 4u);
}

TEST(PoolExternal, FingerprintMismatchThrows) {
  RunSpec spec = pool_spec();
  SystemPool wrong(vm::make_symmetric_config(4, {1, 1}, 0));
  spec.pool = &wrong;
  EXPECT_THROW(run_point(spec, headline_metrics()), std::invalid_argument);
}

TEST(PoolFingerprint, DistinguishesBuildRelevantConfigChanges) {
  const auto base = vm::make_symmetric_config(2, {2, 1, 1}, 5);
  EXPECT_EQ(SystemPool::fingerprint_of(base), SystemPool::fingerprint_of(base));

  auto more_pcpus = base;
  more_pcpus.num_pcpus += 1;
  EXPECT_NE(SystemPool::fingerprint_of(base),
            SystemPool::fingerprint_of(more_pcpus));

  auto spinlocked = base;
  for (auto& vmc : spinlocked.vms) vmc.spinlock.enabled = true;
  EXPECT_NE(SystemPool::fingerprint_of(base),
            SystemPool::fingerprint_of(spinlocked));

  auto other_sync = base;
  for (auto& vmc : other_sync.vms) vmc.sync_ratio_k = 9;
  EXPECT_NE(SystemPool::fingerprint_of(base),
            SystemPool::fingerprint_of(other_sync));
}

}  // namespace
}  // namespace vcpusim::exp
