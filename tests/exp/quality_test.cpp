#include "exp/quality.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace vcpusim::exp {
namespace {

TEST(Quality, PresetsExistAndAreOrdered) {
  const auto fast = quality_preset("fast");
  const auto paper = quality_preset("paper");
  const auto full = quality_preset("full");
  EXPECT_LT(fast.end_time, paper.end_time);
  EXPECT_LT(paper.end_time, full.end_time);
  EXPECT_GT(fast.policy.target_half_width, paper.policy.target_half_width);
  EXPECT_GT(paper.policy.target_half_width, full.policy.target_half_width);
  // The paper preset must meet the paper's stated target (< 0.1 interval
  // at 95% confidence).
  EXPECT_DOUBLE_EQ(paper.policy.confidence, 0.95);
  EXPECT_LT(paper.policy.target_half_width, 0.1);
}

TEST(Quality, UnknownPresetThrows) {
  EXPECT_THROW(quality_preset("hyper"), std::invalid_argument);
  EXPECT_THROW(quality_preset(""), std::invalid_argument);
}

TEST(Quality, EnvSelection) {
  setenv("VCPUSIM_QUALITY", "fast", 1);
  EXPECT_DOUBLE_EQ(quality_from_env().end_time, quality_preset("fast").end_time);
  unsetenv("VCPUSIM_QUALITY");
  EXPECT_DOUBLE_EQ(quality_from_env().end_time,
                   quality_preset("paper").end_time);
}

TEST(Quality, ApplyCopiesOntoRunSpec) {
  RunSpec spec;
  const auto q = quality_preset("fast");
  apply(q, spec);
  EXPECT_DOUBLE_EQ(spec.end_time, q.end_time);
  EXPECT_DOUBLE_EQ(spec.warmup, q.warmup);
  EXPECT_EQ(spec.policy.max_replications, q.policy.max_replications);
}

}  // namespace
}  // namespace vcpusim::exp
