# Empty compiler generated dependencies file for vcpusim_trace.
# This may be replaced when dependencies are built.
