file(REMOVE_RECURSE
  "CMakeFiles/vcpusim_trace.dir/event_log.cpp.o"
  "CMakeFiles/vcpusim_trace.dir/event_log.cpp.o.d"
  "CMakeFiles/vcpusim_trace.dir/latency.cpp.o"
  "CMakeFiles/vcpusim_trace.dir/latency.cpp.o.d"
  "CMakeFiles/vcpusim_trace.dir/timeline.cpp.o"
  "CMakeFiles/vcpusim_trace.dir/timeline.cpp.o.d"
  "libvcpusim_trace.a"
  "libvcpusim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
