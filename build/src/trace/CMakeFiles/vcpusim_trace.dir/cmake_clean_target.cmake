file(REMOVE_RECURSE
  "libvcpusim_trace.a"
)
