# Empty compiler generated dependencies file for vcpusim_sched.
# This may be replaced when dependencies are built.
