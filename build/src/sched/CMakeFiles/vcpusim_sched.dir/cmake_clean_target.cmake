file(REMOVE_RECURSE
  "libvcpusim_sched.a"
)
