
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/balance.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/balance.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/balance.cpp.o.d"
  "/root/repo/src/sched/bvt.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/bvt.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/bvt.cpp.o.d"
  "/root/repo/src/sched/credit.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/credit.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/credit.cpp.o.d"
  "/root/repo/src/sched/fifo.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/fifo.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/fifo.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/priority.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/priority.cpp.o.d"
  "/root/repo/src/sched/registry.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/registry.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/registry.cpp.o.d"
  "/root/repo/src/sched/relaxed_co.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/relaxed_co.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/relaxed_co.cpp.o.d"
  "/root/repo/src/sched/round_robin.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/round_robin.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/round_robin.cpp.o.d"
  "/root/repo/src/sched/sedf.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/sedf.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/sedf.cpp.o.d"
  "/root/repo/src/sched/strict_co.cpp" "src/sched/CMakeFiles/vcpusim_sched.dir/strict_co.cpp.o" "gcc" "src/sched/CMakeFiles/vcpusim_sched.dir/strict_co.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/vcpusim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/vcpusim_san.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
