file(REMOVE_RECURSE
  "CMakeFiles/vcpusim_sched.dir/balance.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/balance.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/bvt.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/bvt.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/credit.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/credit.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/fifo.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/fifo.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/priority.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/priority.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/registry.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/registry.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/relaxed_co.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/relaxed_co.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/round_robin.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/round_robin.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/sedf.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/sedf.cpp.o.d"
  "CMakeFiles/vcpusim_sched.dir/strict_co.cpp.o"
  "CMakeFiles/vcpusim_sched.dir/strict_co.cpp.o.d"
  "libvcpusim_sched.a"
  "libvcpusim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
