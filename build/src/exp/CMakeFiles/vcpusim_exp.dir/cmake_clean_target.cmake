file(REMOVE_RECURSE
  "libvcpusim_exp.a"
)
