# Empty dependencies file for vcpusim_exp.
# This may be replaced when dependencies are built.
