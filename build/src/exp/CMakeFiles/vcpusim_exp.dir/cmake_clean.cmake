file(REMOVE_RECURSE
  "CMakeFiles/vcpusim_exp.dir/quality.cpp.o"
  "CMakeFiles/vcpusim_exp.dir/quality.cpp.o.d"
  "CMakeFiles/vcpusim_exp.dir/runner.cpp.o"
  "CMakeFiles/vcpusim_exp.dir/runner.cpp.o.d"
  "CMakeFiles/vcpusim_exp.dir/sweep.cpp.o"
  "CMakeFiles/vcpusim_exp.dir/sweep.cpp.o.d"
  "CMakeFiles/vcpusim_exp.dir/table.cpp.o"
  "CMakeFiles/vcpusim_exp.dir/table.cpp.o.d"
  "libvcpusim_exp.a"
  "libvcpusim_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
