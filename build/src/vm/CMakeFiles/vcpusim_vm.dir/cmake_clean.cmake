file(REMOVE_RECURSE
  "CMakeFiles/vcpusim_vm.dir/config.cpp.o"
  "CMakeFiles/vcpusim_vm.dir/config.cpp.o.d"
  "CMakeFiles/vcpusim_vm.dir/metrics.cpp.o"
  "CMakeFiles/vcpusim_vm.dir/metrics.cpp.o.d"
  "CMakeFiles/vcpusim_vm.dir/sched_interface.cpp.o"
  "CMakeFiles/vcpusim_vm.dir/sched_interface.cpp.o.d"
  "CMakeFiles/vcpusim_vm.dir/system_builder.cpp.o"
  "CMakeFiles/vcpusim_vm.dir/system_builder.cpp.o.d"
  "CMakeFiles/vcpusim_vm.dir/validation.cpp.o"
  "CMakeFiles/vcpusim_vm.dir/validation.cpp.o.d"
  "CMakeFiles/vcpusim_vm.dir/vcpu_scheduler.cpp.o"
  "CMakeFiles/vcpusim_vm.dir/vcpu_scheduler.cpp.o.d"
  "CMakeFiles/vcpusim_vm.dir/virtual_machine.cpp.o"
  "CMakeFiles/vcpusim_vm.dir/virtual_machine.cpp.o.d"
  "libvcpusim_vm.a"
  "libvcpusim_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
