file(REMOVE_RECURSE
  "libvcpusim_vm.a"
)
