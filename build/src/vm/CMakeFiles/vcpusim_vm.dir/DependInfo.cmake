
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/config.cpp" "src/vm/CMakeFiles/vcpusim_vm.dir/config.cpp.o" "gcc" "src/vm/CMakeFiles/vcpusim_vm.dir/config.cpp.o.d"
  "/root/repo/src/vm/metrics.cpp" "src/vm/CMakeFiles/vcpusim_vm.dir/metrics.cpp.o" "gcc" "src/vm/CMakeFiles/vcpusim_vm.dir/metrics.cpp.o.d"
  "/root/repo/src/vm/sched_interface.cpp" "src/vm/CMakeFiles/vcpusim_vm.dir/sched_interface.cpp.o" "gcc" "src/vm/CMakeFiles/vcpusim_vm.dir/sched_interface.cpp.o.d"
  "/root/repo/src/vm/system_builder.cpp" "src/vm/CMakeFiles/vcpusim_vm.dir/system_builder.cpp.o" "gcc" "src/vm/CMakeFiles/vcpusim_vm.dir/system_builder.cpp.o.d"
  "/root/repo/src/vm/validation.cpp" "src/vm/CMakeFiles/vcpusim_vm.dir/validation.cpp.o" "gcc" "src/vm/CMakeFiles/vcpusim_vm.dir/validation.cpp.o.d"
  "/root/repo/src/vm/vcpu_scheduler.cpp" "src/vm/CMakeFiles/vcpusim_vm.dir/vcpu_scheduler.cpp.o" "gcc" "src/vm/CMakeFiles/vcpusim_vm.dir/vcpu_scheduler.cpp.o.d"
  "/root/repo/src/vm/virtual_machine.cpp" "src/vm/CMakeFiles/vcpusim_vm.dir/virtual_machine.cpp.o" "gcc" "src/vm/CMakeFiles/vcpusim_vm.dir/virtual_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/san/CMakeFiles/vcpusim_san.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
