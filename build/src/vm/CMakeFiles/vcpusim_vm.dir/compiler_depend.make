# Empty compiler generated dependencies file for vcpusim_vm.
# This may be replaced when dependencies are built.
