file(REMOVE_RECURSE
  "libvcpusim_san.a"
)
