file(REMOVE_RECURSE
  "CMakeFiles/vcpusim_san.dir/activity.cpp.o"
  "CMakeFiles/vcpusim_san.dir/activity.cpp.o.d"
  "CMakeFiles/vcpusim_san.dir/experiment.cpp.o"
  "CMakeFiles/vcpusim_san.dir/experiment.cpp.o.d"
  "CMakeFiles/vcpusim_san.dir/model.cpp.o"
  "CMakeFiles/vcpusim_san.dir/model.cpp.o.d"
  "CMakeFiles/vcpusim_san.dir/place.cpp.o"
  "CMakeFiles/vcpusim_san.dir/place.cpp.o.d"
  "CMakeFiles/vcpusim_san.dir/replicate.cpp.o"
  "CMakeFiles/vcpusim_san.dir/replicate.cpp.o.d"
  "CMakeFiles/vcpusim_san.dir/reward.cpp.o"
  "CMakeFiles/vcpusim_san.dir/reward.cpp.o.d"
  "CMakeFiles/vcpusim_san.dir/simulator.cpp.o"
  "CMakeFiles/vcpusim_san.dir/simulator.cpp.o.d"
  "CMakeFiles/vcpusim_san.dir/steady_state.cpp.o"
  "CMakeFiles/vcpusim_san.dir/steady_state.cpp.o.d"
  "libvcpusim_san.a"
  "libvcpusim_san.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim_san.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
