
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/san/activity.cpp" "src/san/CMakeFiles/vcpusim_san.dir/activity.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/activity.cpp.o.d"
  "/root/repo/src/san/experiment.cpp" "src/san/CMakeFiles/vcpusim_san.dir/experiment.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/experiment.cpp.o.d"
  "/root/repo/src/san/model.cpp" "src/san/CMakeFiles/vcpusim_san.dir/model.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/model.cpp.o.d"
  "/root/repo/src/san/place.cpp" "src/san/CMakeFiles/vcpusim_san.dir/place.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/place.cpp.o.d"
  "/root/repo/src/san/replicate.cpp" "src/san/CMakeFiles/vcpusim_san.dir/replicate.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/replicate.cpp.o.d"
  "/root/repo/src/san/reward.cpp" "src/san/CMakeFiles/vcpusim_san.dir/reward.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/reward.cpp.o.d"
  "/root/repo/src/san/simulator.cpp" "src/san/CMakeFiles/vcpusim_san.dir/simulator.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/simulator.cpp.o.d"
  "/root/repo/src/san/steady_state.cpp" "src/san/CMakeFiles/vcpusim_san.dir/steady_state.cpp.o" "gcc" "src/san/CMakeFiles/vcpusim_san.dir/steady_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
