# Empty dependencies file for vcpusim_san.
# This may be replaced when dependencies are built.
