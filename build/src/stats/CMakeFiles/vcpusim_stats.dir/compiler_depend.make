# Empty compiler generated dependencies file for vcpusim_stats.
# This may be replaced when dependencies are built.
