file(REMOVE_RECURSE
  "libvcpusim_stats.a"
)
