
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/batch_means.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/batch_means.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/batch_means.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/distribution.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/distribution.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/distribution.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/p2_quantile.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/p2_quantile.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/p2_quantile.cpp.o.d"
  "/root/repo/src/stats/replication.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/replication.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/replication.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/student_t.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/student_t.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/student_t.cpp.o.d"
  "/root/repo/src/stats/welford.cpp" "src/stats/CMakeFiles/vcpusim_stats.dir/welford.cpp.o" "gcc" "src/stats/CMakeFiles/vcpusim_stats.dir/welford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
