file(REMOVE_RECURSE
  "CMakeFiles/vcpusim_stats.dir/batch_means.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/batch_means.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/confidence.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/distribution.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/histogram.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/replication.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/replication.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/rng.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/rng.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/student_t.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/student_t.cpp.o.d"
  "CMakeFiles/vcpusim_stats.dir/welford.cpp.o"
  "CMakeFiles/vcpusim_stats.dir/welford.cpp.o.d"
  "libvcpusim_stats.a"
  "libvcpusim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
