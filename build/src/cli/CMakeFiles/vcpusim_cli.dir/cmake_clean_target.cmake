file(REMOVE_RECURSE
  "libvcpusim_cli.a"
)
