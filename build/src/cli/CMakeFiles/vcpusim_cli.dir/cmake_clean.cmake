file(REMOVE_RECURSE
  "CMakeFiles/vcpusim_cli.dir/cli.cpp.o"
  "CMakeFiles/vcpusim_cli.dir/cli.cpp.o.d"
  "CMakeFiles/vcpusim_cli.dir/scenario.cpp.o"
  "CMakeFiles/vcpusim_cli.dir/scenario.cpp.o.d"
  "libvcpusim_cli.a"
  "libvcpusim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
