# Empty dependencies file for vcpusim_cli.
# This may be replaced when dependencies are built.
