# Empty compiler generated dependencies file for vcpusim.
# This may be replaced when dependencies are built.
