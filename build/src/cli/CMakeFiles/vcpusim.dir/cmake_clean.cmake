file(REMOVE_RECURSE
  "CMakeFiles/vcpusim.dir/main.cpp.o"
  "CMakeFiles/vcpusim.dir/main.cpp.o.d"
  "vcpusim"
  "vcpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
