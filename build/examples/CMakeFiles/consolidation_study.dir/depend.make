# Empty dependencies file for consolidation_study.
# This may be replaced when dependencies are built.
