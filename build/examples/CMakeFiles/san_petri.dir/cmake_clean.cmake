file(REMOVE_RECURSE
  "CMakeFiles/san_petri.dir/san_petri.cpp.o"
  "CMakeFiles/san_petri.dir/san_petri.cpp.o.d"
  "san_petri"
  "san_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
