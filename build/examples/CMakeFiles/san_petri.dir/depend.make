# Empty dependencies file for san_petri.
# This may be replaced when dependencies are built.
