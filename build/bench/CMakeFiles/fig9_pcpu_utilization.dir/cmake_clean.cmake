file(REMOVE_RECURSE
  "CMakeFiles/fig9_pcpu_utilization.dir/fig9_pcpu_utilization.cpp.o"
  "CMakeFiles/fig9_pcpu_utilization.dir/fig9_pcpu_utilization.cpp.o.d"
  "fig9_pcpu_utilization"
  "fig9_pcpu_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pcpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
