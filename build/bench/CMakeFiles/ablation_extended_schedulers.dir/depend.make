# Empty dependencies file for ablation_extended_schedulers.
# This may be replaced when dependencies are built.
