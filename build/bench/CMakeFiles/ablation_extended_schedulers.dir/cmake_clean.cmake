file(REMOVE_RECURSE
  "CMakeFiles/ablation_extended_schedulers.dir/ablation_extended_schedulers.cpp.o"
  "CMakeFiles/ablation_extended_schedulers.dir/ablation_extended_schedulers.cpp.o.d"
  "ablation_extended_schedulers"
  "ablation_extended_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extended_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
