# Empty dependencies file for ablation_sync_mode.
# This may be replaced when dependencies are built.
