file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_mode.dir/ablation_sync_mode.cpp.o"
  "CMakeFiles/ablation_sync_mode.dir/ablation_sync_mode.cpp.o.d"
  "ablation_sync_mode"
  "ablation_sync_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
