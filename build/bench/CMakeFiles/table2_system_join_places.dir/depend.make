# Empty dependencies file for table2_system_join_places.
# This may be replaced when dependencies are built.
