file(REMOVE_RECURSE
  "CMakeFiles/table2_system_join_places.dir/table2_system_join_places.cpp.o"
  "CMakeFiles/table2_system_join_places.dir/table2_system_join_places.cpp.o.d"
  "table2_system_join_places"
  "table2_system_join_places.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_system_join_places.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
