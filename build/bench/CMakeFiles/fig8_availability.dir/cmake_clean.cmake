file(REMOVE_RECURSE
  "CMakeFiles/fig8_availability.dir/fig8_availability.cpp.o"
  "CMakeFiles/fig8_availability.dir/fig8_availability.cpp.o.d"
  "fig8_availability"
  "fig8_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
