# Empty dependencies file for fig8_availability.
# This may be replaced when dependencies are built.
