file(REMOVE_RECURSE
  "CMakeFiles/ablation_skew_threshold.dir/ablation_skew_threshold.cpp.o"
  "CMakeFiles/ablation_skew_threshold.dir/ablation_skew_threshold.cpp.o.d"
  "ablation_skew_threshold"
  "ablation_skew_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skew_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
