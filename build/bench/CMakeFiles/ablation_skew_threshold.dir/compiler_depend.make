# Empty compiler generated dependencies file for ablation_skew_threshold.
# This may be replaced when dependencies are built.
