# Empty compiler generated dependencies file for table1_vm_join_places.
# This may be replaced when dependencies are built.
