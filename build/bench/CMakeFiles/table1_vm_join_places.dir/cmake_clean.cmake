file(REMOVE_RECURSE
  "CMakeFiles/table1_vm_join_places.dir/table1_vm_join_places.cpp.o"
  "CMakeFiles/table1_vm_join_places.dir/table1_vm_join_places.cpp.o.d"
  "table1_vm_join_places"
  "table1_vm_join_places.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_vm_join_places.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
