# Empty compiler generated dependencies file for ablation_spinlock.
# This may be replaced when dependencies are built.
