file(REMOVE_RECURSE
  "CMakeFiles/ablation_spinlock.dir/ablation_spinlock.cpp.o"
  "CMakeFiles/ablation_spinlock.dir/ablation_spinlock.cpp.o.d"
  "ablation_spinlock"
  "ablation_spinlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
