file(REMOVE_RECURSE
  "CMakeFiles/ablation_workload_dist.dir/ablation_workload_dist.cpp.o"
  "CMakeFiles/ablation_workload_dist.dir/ablation_workload_dist.cpp.o.d"
  "ablation_workload_dist"
  "ablation_workload_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workload_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
