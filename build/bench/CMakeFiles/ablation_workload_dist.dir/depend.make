# Empty dependencies file for ablation_workload_dist.
# This may be replaced when dependencies are built.
