# Empty dependencies file for ablation_xen_schedulers.
# This may be replaced when dependencies are built.
