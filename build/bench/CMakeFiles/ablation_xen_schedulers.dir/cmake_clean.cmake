file(REMOVE_RECURSE
  "CMakeFiles/ablation_xen_schedulers.dir/ablation_xen_schedulers.cpp.o"
  "CMakeFiles/ablation_xen_schedulers.dir/ablation_xen_schedulers.cpp.o.d"
  "ablation_xen_schedulers"
  "ablation_xen_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xen_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
