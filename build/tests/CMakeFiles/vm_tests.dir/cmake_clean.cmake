file(REMOVE_RECURSE
  "CMakeFiles/vm_tests.dir/vm/config_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/config_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/job_scheduler_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/job_scheduler_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/metrics_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/metrics_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/spinlock_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/spinlock_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/system_builder_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/system_builder_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/validation_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/validation_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/vcpu_scheduler_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/vcpu_scheduler_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/vcpu_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/vcpu_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/virtual_machine_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/virtual_machine_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/workload_generator_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/workload_generator_test.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/workload_trace_test.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/workload_trace_test.cpp.o.d"
  "vm_tests"
  "vm_tests.pdb"
  "vm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
