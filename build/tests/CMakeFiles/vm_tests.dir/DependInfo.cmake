
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/config_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/config_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/config_test.cpp.o.d"
  "/root/repo/tests/vm/job_scheduler_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/job_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/job_scheduler_test.cpp.o.d"
  "/root/repo/tests/vm/metrics_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/metrics_test.cpp.o.d"
  "/root/repo/tests/vm/spinlock_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/spinlock_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/spinlock_test.cpp.o.d"
  "/root/repo/tests/vm/system_builder_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/system_builder_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/system_builder_test.cpp.o.d"
  "/root/repo/tests/vm/validation_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/validation_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/validation_test.cpp.o.d"
  "/root/repo/tests/vm/vcpu_scheduler_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/vcpu_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/vcpu_scheduler_test.cpp.o.d"
  "/root/repo/tests/vm/vcpu_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/vcpu_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/vcpu_test.cpp.o.d"
  "/root/repo/tests/vm/virtual_machine_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/virtual_machine_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/virtual_machine_test.cpp.o.d"
  "/root/repo/tests/vm/workload_generator_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/workload_generator_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/workload_generator_test.cpp.o.d"
  "/root/repo/tests/vm/workload_trace_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/workload_trace_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/workload_trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/vcpusim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vcpusim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vcpusim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/vcpusim_san.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
