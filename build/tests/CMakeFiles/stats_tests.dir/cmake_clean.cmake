file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/batch_means_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/batch_means_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/distribution_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/distribution_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/p2_quantile_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/p2_quantile_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/replication_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/replication_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/rng_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/rng_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/student_t_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/student_t_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/welford_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/welford_test.cpp.o.d"
  "stats_tests"
  "stats_tests.pdb"
  "stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
