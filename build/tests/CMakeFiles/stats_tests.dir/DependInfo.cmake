
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/batch_means_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/batch_means_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/batch_means_test.cpp.o.d"
  "/root/repo/tests/stats/confidence_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o.d"
  "/root/repo/tests/stats/distribution_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/distribution_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/p2_quantile_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/p2_quantile_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/p2_quantile_test.cpp.o.d"
  "/root/repo/tests/stats/replication_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/replication_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/replication_test.cpp.o.d"
  "/root/repo/tests/stats/rng_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/rng_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/rng_test.cpp.o.d"
  "/root/repo/tests/stats/student_t_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/student_t_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/student_t_test.cpp.o.d"
  "/root/repo/tests/stats/welford_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/welford_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/welford_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/vcpusim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vcpusim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vcpusim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/vcpusim_san.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
