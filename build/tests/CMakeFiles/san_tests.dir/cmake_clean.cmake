file(REMOVE_RECURSE
  "CMakeFiles/san_tests.dir/san/activity_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/activity_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/experiment_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/experiment_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/model_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/model_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/place_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/place_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/replicate_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/replicate_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/reward_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/reward_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/simulator_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/simulator_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/steady_state_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/steady_state_test.cpp.o.d"
  "CMakeFiles/san_tests.dir/san/stress_test.cpp.o"
  "CMakeFiles/san_tests.dir/san/stress_test.cpp.o.d"
  "san_tests"
  "san_tests.pdb"
  "san_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
