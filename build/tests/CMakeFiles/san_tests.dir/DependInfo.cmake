
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/san/activity_test.cpp" "tests/CMakeFiles/san_tests.dir/san/activity_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/activity_test.cpp.o.d"
  "/root/repo/tests/san/experiment_test.cpp" "tests/CMakeFiles/san_tests.dir/san/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/experiment_test.cpp.o.d"
  "/root/repo/tests/san/model_test.cpp" "tests/CMakeFiles/san_tests.dir/san/model_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/model_test.cpp.o.d"
  "/root/repo/tests/san/place_test.cpp" "tests/CMakeFiles/san_tests.dir/san/place_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/place_test.cpp.o.d"
  "/root/repo/tests/san/replicate_test.cpp" "tests/CMakeFiles/san_tests.dir/san/replicate_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/replicate_test.cpp.o.d"
  "/root/repo/tests/san/reward_test.cpp" "tests/CMakeFiles/san_tests.dir/san/reward_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/reward_test.cpp.o.d"
  "/root/repo/tests/san/simulator_test.cpp" "tests/CMakeFiles/san_tests.dir/san/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/simulator_test.cpp.o.d"
  "/root/repo/tests/san/steady_state_test.cpp" "tests/CMakeFiles/san_tests.dir/san/steady_state_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/steady_state_test.cpp.o.d"
  "/root/repo/tests/san/stress_test.cpp" "tests/CMakeFiles/san_tests.dir/san/stress_test.cpp.o" "gcc" "tests/CMakeFiles/san_tests.dir/san/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/vcpusim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vcpusim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vcpusim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/vcpusim_san.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
