# Empty dependencies file for san_tests.
# This may be replaced when dependencies are built.
