
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/balance_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/balance_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/balance_test.cpp.o.d"
  "/root/repo/tests/sched/bvt_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/bvt_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/bvt_test.cpp.o.d"
  "/root/repo/tests/sched/credit_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/credit_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/credit_test.cpp.o.d"
  "/root/repo/tests/sched/fifo_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/fifo_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/fifo_test.cpp.o.d"
  "/root/repo/tests/sched/priority_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/priority_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/priority_test.cpp.o.d"
  "/root/repo/tests/sched/registry_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/registry_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/registry_test.cpp.o.d"
  "/root/repo/tests/sched/relaxed_co_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/relaxed_co_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/relaxed_co_test.cpp.o.d"
  "/root/repo/tests/sched/round_robin_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/round_robin_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/round_robin_test.cpp.o.d"
  "/root/repo/tests/sched/sedf_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/sedf_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/sedf_test.cpp.o.d"
  "/root/repo/tests/sched/strict_co_test.cpp" "tests/CMakeFiles/sched_tests.dir/sched/strict_co_test.cpp.o" "gcc" "tests/CMakeFiles/sched_tests.dir/sched/strict_co_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/vcpusim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vcpusim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vcpusim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/vcpusim_san.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
