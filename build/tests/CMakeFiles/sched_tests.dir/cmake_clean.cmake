file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/balance_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/balance_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/bvt_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/bvt_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/credit_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/credit_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/fifo_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/fifo_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/priority_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/priority_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/registry_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/registry_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/relaxed_co_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/relaxed_co_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/round_robin_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/round_robin_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/sedf_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/sedf_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/strict_co_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/strict_co_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
