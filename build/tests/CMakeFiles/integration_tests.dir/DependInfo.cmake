
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/full_system_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/full_system_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/full_system_test.cpp.o.d"
  "/root/repo/tests/integration/paper_shapes_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/paper_shapes_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/paper_shapes_test.cpp.o.d"
  "/root/repo/tests/integration/properties_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/properties_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/properties_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/vcpusim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vcpusim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vcpusim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/vcpusim_san.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vcpusim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
