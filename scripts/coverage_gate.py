#!/usr/bin/env python3
"""Line-coverage gate for the simulation kernel and scheduler layers.

Runs gcov (JSON intermediate format) over every .gcda file in a
--coverage build tree, aggregates executed/executable line counts per
first-party source file, and fails if line coverage of src/san or
src/sched drops below the per-layer floor.

Usage:
    python3 scripts/coverage_gate.py BUILD_DIR [--min-san PCT]
        [--min-sched PCT] [--report]

The floors default to levels measured when the gate was introduced
(post observability PR); they are tripwires against coverage erosion,
not targets. Raise them when real coverage rises.
"""

import argparse
import gzip
import json
import pathlib
import shutil
import subprocess
import sys
import tempfile

# Layers gated, with their minimum acceptable line coverage (percent).
# Measured at introduction: src/san 96.0%, src/sched 97.5% (gcc 12);
# the floors leave ~2 points of slack for toolchain variation.
DEFAULT_FLOORS = {
    "src/san": 94.0,
    "src/sched": 95.0,
}


def run_gcov(build_dir: pathlib.Path, scratch: pathlib.Path) -> list[dict]:
    """Invoke gcov in JSON mode on every .gcda and parse the reports."""
    gcda_files = sorted(build_dir.rglob("*.gcda"))
    if not gcda_files:
        sys.exit(f"no .gcda files under {build_dir} — run the tests in a "
                 "build configured with -DVCPUSIM_COVERAGE=ON first")
    gcov = shutil.which("gcov")
    if gcov is None:
        sys.exit("gcov not found on PATH")
    subprocess.run(
        [gcov, "--json-format", *map(str, gcda_files)],
        cwd=scratch,
        check=True,
        stdout=subprocess.DEVNULL,
    )
    reports = []
    for path in scratch.glob("*.gcov.json.gz"):
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            reports.append(json.load(fh))
    return reports


def aggregate(reports: list[dict], repo_root: pathlib.Path) -> dict:
    """Per-source-file (executed, executable) line sets.

    gcov emits one report per translation unit; a header or template
    can appear in many reports, so lines are OR-ed across reports —
    a line counts as covered if any unit executed it.
    """
    files: dict[str, dict[int, bool]] = {}
    for report in reports:
        for entry in report.get("files", []):
            source = pathlib.Path(entry["file"])
            if not source.is_absolute():
                source = repo_root / source
            try:
                rel = source.resolve().relative_to(repo_root)
            except ValueError:
                continue  # system / third-party header
            lines = files.setdefault(str(rel), {})
            for line in entry.get("lines", []):
                number = line["line_number"]
                lines[number] = lines.get(number, False) or line["count"] > 0
    return files


def layer_coverage(files: dict, layer: str) -> tuple[int, int]:
    executed = executable = 0
    for rel, lines in files.items():
        if not rel.startswith(layer + "/"):
            continue
        executable += len(lines)
        executed += sum(1 for covered in lines.values() if covered)
    return executed, executable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", type=pathlib.Path)
    parser.add_argument("--min-san", type=float,
                        default=DEFAULT_FLOORS["src/san"])
    parser.add_argument("--min-sched", type=float,
                        default=DEFAULT_FLOORS["src/sched"])
    parser.add_argument("--report", action="store_true",
                        help="also print per-file coverage of gated layers")
    args = parser.parse_args()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    with tempfile.TemporaryDirectory() as scratch:
        reports = run_gcov(args.build_dir.resolve(), pathlib.Path(scratch))
    files = aggregate(reports, repo_root)

    floors = {"src/san": args.min_san, "src/sched": args.min_sched}
    failed = False
    for layer, floor in floors.items():
        executed, executable = layer_coverage(files, layer)
        if executable == 0:
            print(f"{layer}: no instrumented lines found")
            failed = True
            continue
        pct = 100.0 * executed / executable
        status = "ok" if pct >= floor else "FAIL"
        print(f"{layer}: {pct:.1f}% line coverage "
              f"({executed}/{executable} lines, floor {floor:.1f}%) {status}")
        if pct < floor:
            failed = True
        if args.report:
            for rel in sorted(files):
                if not rel.startswith(layer + "/"):
                    continue
                lines = files[rel]
                if not lines:
                    continue
                covered = sum(1 for c in lines.values() if c)
                print(f"  {rel}: {100.0 * covered / len(lines):5.1f}% "
                      f"({covered}/{len(lines)})")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
