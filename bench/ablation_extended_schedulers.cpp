// Ablation: the extension algorithms beyond the paper's three — balance
// scheduling vs stacking-prone per-PCPU round-robin (Sukwong & Kim, the
// paper's reference [1]), the Xen-style credit scheduler, FIFO
// run-to-completion and strict priority — on the paper's Figure 9/10
// over-committed setup.
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — extension schedulers on the over-committed setup",
      "4 PCPUs; VMs {2,4} VCPUs; sync 1:3; all registered algorithms");

  exp::Table table({"algorithm", "PCPU util", "VCPU util (busy/active)",
                    "mean availability", "throughput (jobs/tick)"});
  for (const auto& algorithm : sched::builtin_algorithms()) {
    const auto system = vm::make_symmetric_config(4, {2, 4}, 3);
    const auto result = bench::run_metrics(
        algorithm, system,
        {{exp::MetricKind::kPcpuUtilization, -1, "pcpu"},
         {exp::MetricKind::kMeanVcpuUtilization, -1, "util"},
         {exp::MetricKind::kMeanVcpuAvailability, -1, "avail"},
         {exp::MetricKind::kThroughput, -1, "thr"}});
    table.add_row({algorithm,
                   exp::format_ci_percent(result.metric("pcpu").ci),
                   exp::format_ci_percent(result.metric("util").ci),
                   exp::format_ci_percent(result.metric("avail").ci),
                   exp::format_fixed(result.metric("thr").ci.mean, 3)});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nNotes: 'rrs-stacked' pins sibling VCPUs onto hashed "
               "per-PCPU run queues (the VCPU-stacking pathology); "
               "'balance' places siblings on distinct queues; 'priority' "
               "deliberately starves the lower-priority VM.\n";
  return 0;
}
