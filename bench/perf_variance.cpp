// Variance-reduction benchmark: replications needed to reach the paper's
// CI half-width target under the fixed controller versus the antithetic
// controller (which embeds the adaptive batch sizing), across system
// sizes. Deterministic — every quantity is a pure function of the seeds,
// so CI runs one iteration and gates on the counters
// (BENCH_variance.json: antithetic replications <= 0.6x fixed).
#include <benchmark/benchmark.h>

#include <vector>

#include "exp/runner.hpp"
#include "sched/registry.hpp"
#include "vm/system_builder.hpp"

namespace {

using namespace vcpusim;

/// 2:1 VCPU over-commit with 1:5 sync — enough cross-replication
/// variance that the stopping rule actually has work to do at a short
/// horizon.
exp::RunSpec variance_spec(int vcpus, stats::ControllerKind controller) {
  exp::RunSpec spec;
  const int vms = vcpus / 2;
  spec.system = vm::make_symmetric_config(
      vms, std::vector<int>(static_cast<std::size_t>(vms), 2), 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.end_time = 150.0;
  spec.warmup = 30.0;
  spec.policy.min_replications = 6;
  spec.policy.max_replications = 400;
  // Throughput scales with system size; target ~2% of the mean per size.
  spec.policy.target_half_width = vcpus == 4 ? 0.006
                                : vcpus == 16 ? 0.012
                                              : 0.022;
  spec.controller = controller;
  return spec;
}

void run_to_convergence(benchmark::State& state,
                        stats::ControllerKind controller) {
  const int vcpus = static_cast<int>(state.range(0));
  std::size_t replications = 0;
  std::size_t invoked = 0;
  for (auto _ : state) {
    const auto result =
        exp::run_point(variance_spec(vcpus, controller),
                       {{exp::MetricKind::kThroughput, -1, "m"}});
    replications = result.replications;
    invoked = result.invoked;
    benchmark::DoNotOptimize(result.converged);
  }
  state.counters["vcpus"] = static_cast<double>(vcpus);
  state.counters["replications"] = static_cast<double>(replications);
  state.counters["invoked"] = static_cast<double>(invoked);
}

void BM_ReplicationsToConverge_Fixed(benchmark::State& state) {
  run_to_convergence(state, stats::ControllerKind::kFixed);
}
BENCHMARK(BM_ReplicationsToConverge_Fixed)
    ->Arg(4)->Arg(16)->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ReplicationsToConverge_Antithetic(benchmark::State& state) {
  run_to_convergence(state, stats::ControllerKind::kAntithetic);
}
BENCHMARK(BM_ReplicationsToConverge_Antithetic)
    ->Arg(4)->Arg(16)->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
