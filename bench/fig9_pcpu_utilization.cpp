// Reproduces paper Figure 9: "The averaged PCPU Utilization (of four
// PCPUs) in different VM setups" — VM sets {2+2}, {2+3}, {2+4} VCPUs,
// sync ratio 1:5, 4 PCPUs, under RRS, SCS and RCS.
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Figure 9 — averaged PCPU Utilization (CPU fragmentation)",
      "4 PCPUs; VM sets: set1 = {2,2} VCPUs, set2 = {2,3}, set3 = {2,4}; "
      "sync ratio 1:5");

  const std::vector<std::pair<std::string, std::vector<int>>> sets = {
      {"set1 (2+2 VCPUs)", {2, 2}},
      {"set2 (2+3 VCPUs)", {2, 3}},
      {"set3 (2+4 VCPUs)", {2, 4}},
  };

  exp::Table table({"VM set", "RRS", "SCS", "RCS"});
  for (const auto& [label, vms] : sets) {
    std::vector<std::string> row = {label};
    for (const auto& algorithm : bench::paper_algorithms()) {
      const auto system = vm::make_symmetric_config(4, vms, 5);
      const auto estimate = bench::run_metric(
          algorithm, system, {exp::MetricKind::kPcpuUtilization, -1, "u"});
      row.push_back(exp::format_ci_percent(estimate.ci));
    }
    table.add_row(std::move(row));
  }
  std::cout << "\nPCPU Utilization, mean of 4 PCPUs (95% CI)\n"
            << table.render();
  std::cout << "\nExpected shape (paper IV.B): with #VCPU > #PCPU the "
               "co-scheduling algorithms cannot fully utilize the PCPUs "
               "(fragmentation); RCS mitigates it, staying above 90%; RRS "
               "pins utilization at ~100%.\n";
  return 0;
}
