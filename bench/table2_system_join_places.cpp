// Reproduces paper Table 2: "Join places in Virtual System model" — the
// Schedule_In/Schedule_Out joins between the VM models and the VCPU
// Scheduler in the two-VM, two-VCPUs-each system of Figure 7, printed
// from the actually constructed model's join registry.
#include <iostream>

#include "sched/registry.hpp"
#include "vm/system_builder.hpp"

int main() {
  using namespace vcpusim;

  std::cout << "Table 2 — join places in the Virtual System composed model\n"
            << "(two VMs x two VCPUs + VCPU_Scheduler; paper Figure 7)\n\n";

  auto system = vm::build_system(vm::make_symmetric_config(4, {2, 2}, 5),
                                 sched::make_factory("rrs")());

  // The paper's Table 2 lists only the VM <-> scheduler joins (the
  // intra-VM joins are Table 1); filter accordingly.
  std::cout << "State Variable Name   Sub-model Variables\n";
  std::cout << "--------------------------------------------------------\n";
  for (const auto& entry : system->model->join_registry()) {
    if (entry.shared_name.rfind("Schedule_", 0) != 0) continue;
    bool first = true;
    for (const auto& member : entry.member_names) {
      if (first) {
        std::cout << entry.shared_name
                  << std::string(entry.shared_name.size() < 22
                                     ? 22 - entry.shared_name.size()
                                     : 1,
                                 ' ')
                  << member << "\n";
        first = false;
      } else {
        std::cout << std::string(22, ' ') << member << "\n";
      }
    }
  }
  std::cout << "\n(The paper shows the joins of the first VM and omits the "
               "second 'due to space limit'; both are printed here.)\n";
  return 0;
}
