// Reproduces paper Figure 8: "The availability of four VCPUs in three
// VMs (2 VCPUs + 1 VCPU + 1 VCPU)" under RRS, SCS and RCS, with the
// number of PCPUs varied from 1 to 4 and synchronization ratio 1:5.
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Figure 8 — VCPU Availability (fairness)",
      "three VMs: VM1 = 2 VCPUs (VCPU1.1, VCPU1.2), VM2 = 1 VCPU (VCPU2.1), "
      "VM3 = 1 VCPU (VCPU3.1); sync ratio 1:5; PCPUs swept 1..4");

  const std::vector<std::string> vcpu_labels = {"VCPU1.1", "VCPU1.2",
                                                "VCPU2.1", "VCPU3.1"};
  for (const auto& algorithm : bench::paper_algorithms()) {
    exp::Table table({"PCPUs", "VCPU1.1", "VCPU1.2", "VCPU2.1", "VCPU3.1"});
    for (int pcpus = 1; pcpus <= 4; ++pcpus) {
      const auto system = vm::make_symmetric_config(pcpus, {2, 1, 1}, 5);
      std::vector<exp::MetricRequest> metrics;
      for (int v = 0; v < 4; ++v) {
        metrics.push_back({exp::MetricKind::kVcpuAvailability, v,
                           vcpu_labels[static_cast<std::size_t>(v)]});
      }
      const auto result = bench::run_metrics(algorithm, system, metrics);
      std::vector<std::string> row = {std::to_string(pcpus)};
      for (const auto& label : vcpu_labels) {
        row.push_back(exp::format_ci_percent(result.metric(label).ci));
      }
      table.add_row(std::move(row));
    }
    std::cout << "\n[" << algorithm << "] VCPU Availability (95% CI)\n"
              << table.render();
  }
  std::cout << "\nExpected shape (paper IV.A): RRS fair at every PCPU count; "
               "SCS starves the 2-VCPU VM at 1 PCPU; RCS schedules it but "
               "below the 1-VCPU VMs; co-scheduling fairness improves with "
               "more PCPUs.\n";
  return 0;
}
