// Ablation: spinlock critical sections and lock-holder preemption — the
// paper's Section V discussion ("long synchronization latencies caused
// by VCPU scheduling could violate the assumptions of some locking
// mechanisms, e.g. spinlocks assuming that the critical sections are
// short").
//
// A 4-VCPU VM with lock-guarded job tails shares 2 PCPUs with a 2-VCPU
// VM. When the hypervisor preempts a lock holder, siblings spin — burning
// PCPU time without progress. Co-scheduling avoids the pathology by
// construction; stacking-prone per-PCPU round-robin maximizes it.
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — spinlock critical sections (lock-holder preemption)",
      "4 PCPUs; VM1 = 4 VCPUs with spinlock jobs (p_lock = 0.8), VM2 = 2 "
      "VCPUs plain; sync disabled; critical fraction swept");

  for (const double critical : {0.2, 0.5, 0.8}) {
    exp::Table table({"algorithm", "spin fraction", "effective util",
                      "raw VCPU util", "throughput"});
    for (const std::string algorithm :
         {"rrs", "rrs-stacked", "balance", "scs", "rcs", "fifo"}) {
      auto system = vm::make_symmetric_config(4, {4, 2}, 0);
      system.vms[0].spinlock.enabled = true;
      system.vms[0].spinlock.lock_probability = 0.8;
      system.vms[0].spinlock.critical_fraction = critical;
      const auto result = bench::run_metrics(
          algorithm, system,
          {{exp::MetricKind::kMeanSpinFraction, -1, "spin"},
           {exp::MetricKind::kMeanEffectiveUtilization, -1, "eff"},
           {exp::MetricKind::kMeanVcpuUtilization, -1, "util"},
           {exp::MetricKind::kThroughput, -1, "thr"}});
      table.add_row({algorithm,
                     exp::format_ci_percent(result.metric("spin").ci),
                     exp::format_ci_percent(result.metric("eff").ci),
                     exp::format_ci_percent(result.metric("util").ci),
                     exp::format_fixed(result.metric("thr").ci.mean, 3)});
    }
    std::cout << "\ncritical fraction = " << critical << "\n" << table.render();
  }
  std::cout << "\nReading: 'spin fraction' is wall-clock time burned "
               "spin-waiting; 'effective util' discounts it from the "
               "busy/active ratio. Lock-holder preemption shows up as the "
               "gap between raw and effective utilization.\n";
  return 0;
}
