// Ablation: deterministic every-k-th vs random Bernoulli(1/k) placement
// of synchronization points — does barrier regularity matter?
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — synchronization-point placement (every-kth vs random)",
      "4 PCPUs; VMs {2,3}; sync ratio 1:3; metric: VCPU Utilization");

  exp::Table table({"sync mode", "RRS", "SCS", "RCS"});
  for (const auto mode : {vm::SyncMode::kEveryKth, vm::SyncMode::kRandom}) {
    std::vector<std::string> row = {
        mode == vm::SyncMode::kEveryKth ? "every 3rd workload"
                                        : "random p=1/3"};
    for (const auto& algorithm : bench::paper_algorithms()) {
      auto system = vm::make_symmetric_config(4, {2, 3}, 3);
      for (auto& vm_cfg : system.vms) vm_cfg.sync_mode = mode;
      const auto estimate = bench::run_metric(
          algorithm, system, {exp::MetricKind::kMeanVcpuUtilization, -1, "u"});
      row.push_back(exp::format_ci_percent(estimate.ci));
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n" << table.render();
  return 0;
}
