// google-benchmark microbenchmarks of the discrete-event SAN kernel:
// events/second across system sizes, the primitive building blocks
// (RNG, distribution sampling, event queue churn via an M/M/1 model),
// replication-level parallel speedup, and incremental-enabling settle
// throughput. CI publishes the parallel/settle numbers as
// BENCH_parallel.json (see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include "exp/runner.hpp"
#include "san/simulator.hpp"
#include "sched/registry.hpp"
#include "stats/distribution.hpp"
#include "vm/metrics.hpp"
#include "vm/system_builder.hpp"

namespace {

using namespace vcpusim;

void BM_RngUniform01(benchmark::State& state) {
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform01());
  }
}
BENCHMARK(BM_RngUniform01);

void BM_ExponentialSample(benchmark::State& state) {
  stats::Rng rng(1);
  const auto dist = stats::make_exponential(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist->sample(rng));
  }
}
BENCHMARK(BM_ExponentialSample);

void BM_MM1Events(benchmark::State& state) {
  double total_events = 0;
  for (auto _ : state) {
    san::ComposedModel model("MM1");
    auto& sub = model.add_submodel("Q");
    auto queue = sub.add_place<std::int64_t>("queue", 0);
    auto& arrive = sub.add_timed_activity("arrive", stats::make_exponential(0.5));
    arrive.add_output_gate(
        {"a", [queue](san::GateContext&) { queue->mut() += 1; }});
    auto& serve = sub.add_timed_activity("serve", stats::make_exponential(1.0));
    serve.add_input_gate(
        {"busy", [queue]() { return queue->get() > 0; }, nullptr});
    serve.add_output_gate(
        {"s", [queue](san::GateContext&) { queue->mut() -= 1; }});
    san::SimulatorConfig config;
    config.end_time = 10000.0;
    config.seed = 7;
    const auto stats_out = san::run_once(model, config);
    total_events += static_cast<double>(stats_out.events);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MM1Events)->Unit(benchmark::kMillisecond);

/// Full virtualization-system simulation throughput at increasing scale:
/// arg = number of 2-VCPU VMs (PCPUs = VMs, i.e. 50% over-commit).
void BM_VirtualSystemScale(benchmark::State& state) {
  const int vms = static_cast<int>(state.range(0));
  double total_events = 0;
  for (auto _ : state) {
    auto system = vm::build_system(
        vm::make_symmetric_config(vms, std::vector<int>(static_cast<std::size_t>(vms), 2), 5),
        sched::make_factory("rrs")());
    san::SimulatorConfig config;
    config.end_time = 1000.0;
    config.seed = 11;
    const auto stats_out = san::run_once(*system->model, config);
    total_events += static_cast<double>(stats_out.events);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
  state.counters["vcpus"] = static_cast<double>(vms * 2);
}
BENCHMARK(BM_VirtualSystemScale)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Per-algorithm scheduling-function overhead across system sizes:
/// args = (total VCPUs, engine 0/1) with 2-VCPU VMs and PCPUs = VMs,
/// i.e. 50% over-commit. Engine 1 is the compiled data-oriented kernel
/// (arena markings + flat gate dispatch), engine 0 the object-graph
/// reference; trajectories are bit-identical, so the events_per_s ratio
/// is pure kernel overhead. The system and simulator are built once and
/// reused via the PR-5 replication recipe (VirtualSystem::reset +
/// Simulator::reset(seed)) — the same steady state the exp::SystemPool
/// runs in, so model construction and compilation are not in the
/// measured loop. CI publishes the matrix as BENCH_kernel.json and
/// gates compiled >= 2x object at 64 VCPUs (see the perf-smoke job).
/// enabling_evals_per_event is the tell-tale for the Scheduling_Func
/// gate's dynamic write footprint: it stays roughly flat as the system
/// grows, whereas a full enabling rescan on every scheduler tick would
/// make it grow linearly with the VCPU count.
void BM_SchedulerTick(benchmark::State& state,
                      const std::string& algorithm) {
  const int vms = static_cast<int>(state.range(0)) / 2;
  const bool compiled = state.range(1) != 0;
  auto system = vm::build_system(
      vm::make_symmetric_config(
          vms, std::vector<int>(static_cast<std::size_t>(vms), 2), 5),
      sched::make_factory(algorithm)());
  san::SimulatorConfig config;
  config.end_time = 1000.0;
  config.seed = 3;
  config.engine = compiled ? san::Engine::kCompiled : san::Engine::kObjectGraph;
  san::Simulator sim(config);
  sim.set_model(*system->model);
  double total_events = 0;
  double total_evals = 0;
  double total_aborted = 0;
  for (auto _ : state) {
    system->reset();
    sim.reset(config.seed);
    const auto stats_out = sim.advance_until(config.end_time);
    total_events += static_cast<double>(stats_out.events);
    total_evals += static_cast<double>(stats_out.enabling_evals);
    total_aborted += static_cast<double>(stats_out.aborted_events);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
  state.counters["enabling_evals_per_event"] = total_evals / total_events;
  state.counters["aborted_per_event"] = total_aborted / total_events;
  state.counters["vcpus"] = static_cast<double>(state.range(0));
  state.counters["engine_compiled"] = compiled ? 1.0 : 0.0;
}
BENCHMARK_CAPTURE(BM_SchedulerTick, rrs, std::string("rrs"))
    ->Args({4, 0})->Args({4, 1})->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1})->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerTick, scs, std::string("scs"))
    ->Args({4, 0})->Args({4, 1})->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1})->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerTick, rcs, std::string("rcs"))
    ->Args({4, 0})->Args({4, 1})->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1})->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerTick, credit, std::string("credit"))
    ->Args({4, 0})->Args({4, 1})->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1})->Unit(benchmark::kMillisecond);

/// Where scheduler-tick time actually goes: the same workload as
/// BM_SchedulerTick with phase profiling enabled, publishing per-phase
/// nanosecond shares (settle/fire from the kernel, compile from the
/// data-oriented lowering, decide/apply from the scheduler bridge) as
/// counters. Compare events_per_s against the BM_SchedulerTick rows to
/// see the profiling overhead itself; the tracing/profiling-disabled
/// rows above are the regression gate.
void BM_SchedulerTickProfiled(benchmark::State& state) {
  const int vms = static_cast<int>(state.range(0)) / 2;
  const bool compiled = state.range(1) != 0;
  double total_events = 0;
  stats::PhaseProfile total;
  auto system = vm::build_system(
      vm::make_symmetric_config(
          vms, std::vector<int>(static_cast<std::size_t>(vms), 2), 5),
      sched::make_factory("rrs")());
  san::SimulatorConfig config;
  config.end_time = 1000.0;
  config.seed = 3;
  config.profile = true;
  config.engine = compiled ? san::Engine::kCompiled : san::Engine::kObjectGraph;
  system->scheduler_places.profile->set_enabled(true);
  san::Simulator sim(config);
  sim.set_model(*system->model);
  total.merge(sim.compile_profile());  // one-time lowering cost
  for (auto _ : state) {
    system->reset();
    sim.reset(config.seed);
    const auto stats_out = sim.advance_until(config.end_time);
    total_events += static_cast<double>(stats_out.events);
    total.merge(sim.profile());
    total.merge(*system->scheduler_places.profile);
    system->scheduler_places.profile->reset();
    system->scheduler_places.profile->set_enabled(true);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(stats::Phase::kCount_); ++i) {
    const auto phase = static_cast<stats::Phase>(i);
    if (total.calls(phase) == 0) continue;
    state.counters[std::string(stats::phase_name(phase)) + "_ns_per_event"] =
        static_cast<double>(total.nanoseconds(phase)) / total_events;
  }
  state.counters["engine_compiled"] = compiled ? 1.0 : 0.0;
}
BENCHMARK(BM_SchedulerTickProfiled)
    ->Args({16, 0})->Args({16, 1})->Args({64, 0})->Args({64, 1})
    ->Unit(benchmark::kMillisecond);

/// Parallel replication speedup: a fig8-style run_point with a fixed
/// replication count (min == max, unreachable CI target, so every jobs
/// value does identical work) at arg = worker threads. The 8-job row
/// over the 1-job row is the speedup figure the CI perf-smoke job
/// records; results are bit-identical across rows by construction.
void BM_ParallelRunPoint(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  exp::RunSpec spec;
  spec.system = vm::make_symmetric_config(2, {2, 1, 1}, 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.end_time = 1500.0;
  spec.warmup = 200.0;
  spec.jobs = jobs;
  spec.policy.min_replications = 16;
  spec.policy.max_replications = 16;
  spec.policy.target_half_width = 1e-12;  // never converges early
  double total_replications = 0;
  for (auto _ : state) {
    const auto result = exp::run_point(
        spec, {{exp::MetricKind::kMeanVcpuAvailability, -1, ""}});
    total_replications += static_cast<double>(result.replications);
  }
  state.counters["replications_per_s"] =
      benchmark::Counter(total_replications, benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_ParallelRunPoint)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Setup-cost amortization of the zero-rebuild replication engine: a
/// run_point with a deliberately short horizon, so per-replication
/// system construction (places, gate closures, dependency index) is a
/// large share of the work. args = (total VCPUs, pooled 0/1): the
/// pooled row reuses one built (system, simulator) slot per executor
/// lane via SystemPool, the rebuild row is the legacy
/// build-per-replication path. CI gates pooled >= 2x rebuild
/// replications_per_s at every size (see docs/PERFORMANCE.md).
void BM_ReplicationSetup(benchmark::State& state) {
  const int vcpus = static_cast<int>(state.range(0));
  const bool pooled = state.range(1) != 0;
  const int vms = vcpus / 2;
  exp::RunSpec spec;
  spec.system = vm::make_symmetric_config(
      vms, std::vector<int>(static_cast<std::size_t>(vms), 2), 5);
  spec.scheduler = sched::make_factory("rrs");
  spec.end_time = 20.0;  // short horizon: setup cost dominates
  spec.warmup = 5.0;
  spec.jobs = 1;
  spec.reuse_systems = pooled;
  spec.policy.min_replications = 32;
  spec.policy.max_replications = 32;
  spec.policy.target_half_width = 1e-12;  // never converges early
  double total_replications = 0;
  for (auto _ : state) {
    const auto result = exp::run_point(
        spec, {{exp::MetricKind::kMeanVcpuAvailability, -1, ""}});
    total_replications += static_cast<double>(result.replications);
  }
  state.counters["replications_per_s"] =
      benchmark::Counter(total_replications, benchmark::Counter::kIsRate);
  state.counters["vcpus"] = static_cast<double>(vcpus);
  state.counters["pooled"] = pooled ? 1.0 : 0.0;
}
BENCHMARK(BM_ReplicationSetup)
    ->Args({4, 0})->Args({4, 1})
    ->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Unit(benchmark::kMillisecond);

/// Incremental vs full-scan enabling on a large composed system: the
/// same trajectory, with settle() either re-evaluating every activity
/// after each firing (arg = 0) or only the footprint-affected ones
/// (arg = 1). events_per_s is the settle-throughput figure.
void BM_SettleEnabling(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const int vms = 12;  // 24 VCPUs on 12 PCPUs: wide activity fan-out
  double total_events = 0;
  for (auto _ : state) {
    auto system = vm::build_system(
        vm::make_symmetric_config(
            vms, std::vector<int>(static_cast<std::size_t>(vms), 2), 5),
        sched::make_factory("rrs")());
    san::SimulatorConfig config;
    config.end_time = 600.0;
    config.seed = 17;
    config.incremental_enabling = incremental;
    const auto stats_out = san::run_once(*system->model, config);
    total_events += static_cast<double>(stats_out.events);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
  state.counters["incremental"] = incremental ? 1.0 : 0.0;
}
BENCHMARK(BM_SettleEnabling)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
