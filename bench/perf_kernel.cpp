// google-benchmark microbenchmarks of the discrete-event SAN kernel:
// events/second across system sizes, plus the primitive building blocks
// (RNG, distribution sampling, event queue churn via an M/M/1 model).
#include <benchmark/benchmark.h>

#include "san/simulator.hpp"
#include "sched/registry.hpp"
#include "stats/distribution.hpp"
#include "vm/metrics.hpp"
#include "vm/system_builder.hpp"

namespace {

using namespace vcpusim;

void BM_RngUniform01(benchmark::State& state) {
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform01());
  }
}
BENCHMARK(BM_RngUniform01);

void BM_ExponentialSample(benchmark::State& state) {
  stats::Rng rng(1);
  const auto dist = stats::make_exponential(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist->sample(rng));
  }
}
BENCHMARK(BM_ExponentialSample);

void BM_MM1Events(benchmark::State& state) {
  double total_events = 0;
  for (auto _ : state) {
    san::ComposedModel model("MM1");
    auto& sub = model.add_submodel("Q");
    auto queue = sub.add_place<std::int64_t>("queue", 0);
    auto& arrive = sub.add_timed_activity("arrive", stats::make_exponential(0.5));
    arrive.add_output_gate(
        {"a", [queue](san::GateContext&) { queue->mut() += 1; }});
    auto& serve = sub.add_timed_activity("serve", stats::make_exponential(1.0));
    serve.add_input_gate(
        {"busy", [queue]() { return queue->get() > 0; }, nullptr});
    serve.add_output_gate(
        {"s", [queue](san::GateContext&) { queue->mut() -= 1; }});
    san::SimulatorConfig config;
    config.end_time = 10000.0;
    config.seed = 7;
    const auto stats_out = san::run_once(model, config);
    total_events += static_cast<double>(stats_out.events);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MM1Events)->Unit(benchmark::kMillisecond);

/// Full virtualization-system simulation throughput at increasing scale:
/// arg = number of 2-VCPU VMs (PCPUs = VMs, i.e. 50% over-commit).
void BM_VirtualSystemScale(benchmark::State& state) {
  const int vms = static_cast<int>(state.range(0));
  double total_events = 0;
  for (auto _ : state) {
    auto system = vm::build_system(
        vm::make_symmetric_config(vms, std::vector<int>(static_cast<std::size_t>(vms), 2), 5),
        sched::make_factory("rrs")());
    san::SimulatorConfig config;
    config.end_time = 1000.0;
    config.seed = 11;
    const auto stats_out = san::run_once(*system->model, config);
    total_events += static_cast<double>(stats_out.events);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
  state.counters["vcpus"] = static_cast<double>(vms * 2);
}
BENCHMARK(BM_VirtualSystemScale)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Per-algorithm scheduling-function overhead on a fixed system.
void BM_SchedulerTick(benchmark::State& state,
                      const std::string& algorithm) {
  double total_events = 0;
  for (auto _ : state) {
    auto system = vm::build_system(vm::make_symmetric_config(4, {2, 2, 2}, 5),
                                   sched::make_factory(algorithm)());
    san::SimulatorConfig config;
    config.end_time = 2000.0;
    config.seed = 3;
    const auto stats_out = san::run_once(*system->model, config);
    total_events += static_cast<double>(stats_out.events);
  }
  state.counters["events_per_s"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_SchedulerTick, rrs, std::string("rrs"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerTick, scs, std::string("scs"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerTick, rcs, std::string("rcs"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerTick, credit, std::string("credit"))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
