// Ablation: workload (load-duration) distribution. The paper notes the
// generator is "configurable to any distribution and rate"; this sweep
// shows how distribution shape (variance at equal mean 5.5) moves the
// three algorithms' synchronization latency.
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — load-duration distribution (equal mean ~5.5)",
      "4 PCPUs; VMs {2,3}; sync 1:3; metric: VCPU Utilization");

  const std::vector<std::pair<std::string, stats::DistributionPtr>> dists = {
      {"deterministic(5.5)", stats::make_deterministic(5.5)},
      {"uniformint(1,10)", stats::make_uniform_int(1, 10)},
      {"exponential(0.182)", stats::make_exponential(1.0 / 5.5)},
      {"erlang(4,0.727)", stats::make_erlang(4, 4.0 / 5.5)},
      {"geometric(0.182)", stats::make_geometric(1.0 / 5.5)},
  };

  exp::Table table({"distribution", "RRS", "SCS", "RCS"});
  for (const auto& [label, dist] : dists) {
    std::vector<std::string> row = {label};
    for (const auto& algorithm : bench::paper_algorithms()) {
      auto system = vm::make_symmetric_config(4, {2, 3}, 3);
      for (auto& vm_cfg : system.vms) vm_cfg.load_distribution = dist;
      const auto estimate = bench::run_metric(
          algorithm, system, {exp::MetricKind::kMeanVcpuUtilization, -1, "u"});
      row.push_back(exp::format_ci_percent(estimate.ci));
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n" << table.render();
  return 0;
}
