// Ablation: scheduler timeslice length vs synchronization latency.
//
// The paper fixes the timeslice; this sweep shows the trade-off it
// hides: short timeslices interleave VMs finely (fast barrier drains,
// more fairness churn), long timeslices amplify the VCPU-stacking stall
// of RRS while co-scheduling is largely insensitive.
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — timeslice sweep",
      "4 PCPUs; VMs {2,4} VCPUs; sync ratio 1:3; timeslice swept 2..20; "
      "metric: VCPU Utilization (busy/active)");

  exp::Table table({"timeslice", "RRS", "SCS", "RCS"});
  for (const double timeslice : {2.0, 5.0, 10.0, 20.0}) {
    std::vector<std::string> row = {exp::format_fixed(timeslice, 0)};
    for (const auto& algorithm : bench::paper_algorithms()) {
      auto system = vm::make_symmetric_config(4, {2, 4}, 3);
      system.default_timeslice = timeslice;
      const auto estimate = bench::run_metric(
          algorithm, system, {exp::MetricKind::kMeanVcpuUtilization, -1, "u"});
      row.push_back(exp::format_ci_percent(estimate.ci));
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n" << table.render();
  return 0;
}
