// Ablation: the three Xen CPU schedulers — BVT, SEDF, Credit — compared
// qualitatively after Cherkasova, Gupta & Vahdat, "Comparison of the
// three CPU schedulers in Xen" (the paper's reference [8]).
//
// Two studies:
//  1. Weighted fairness: three 1-VCPU VMs sharing 1 PCPU at weight
//     (reservation) ratio 4:2:1 — how close does each scheduler come to
//     the 4:2:1 split, and how does it spend leftover capacity?
//  2. The paper's own over-committed barrier workload under all three.
#include "bench_util.hpp"
#include "sched/bvt.hpp"
#include "sched/credit.hpp"
#include "sched/sedf.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — the three Xen schedulers (BVT / SEDF / Credit)",
      "study 1: weight ratio 4:2:1 on 1 PCPU; study 2: paper workload "
      "{2,3} VCPUs on 4 PCPUs, sync 1:3");

  const auto factories =
      std::vector<std::pair<std::string, vm::SchedulerFactory>>{
          {"bvt", [] {
             sched::BvtOptions options;
             options.vm_weights = {4.0, 2.0, 1.0};
             return sched::make_bvt(options);
           }},
          {"sedf", [] {
             sched::SedfOptions options;
             // Reservations proportional to 4:2:1 over a 14-tick period.
             options.reservations = {{8.0, 14.0}, {4.0, 14.0}, {2.0, 14.0}};
             return sched::make_sedf(options);
           }},
          {"credit", [] {
             sched::CreditOptions options;
             options.vm_weights = {4.0, 2.0, 1.0};
             return sched::make_credit(options);
           }},
      };

  {
    exp::Table table({"scheduler", "VM1 (w=4)", "VM2 (w=2)", "VM3 (w=1)",
                      "PCPU util"});
    for (const auto& [label, factory] : factories) {
      exp::RunSpec spec;
      spec.system = vm::make_symmetric_config(1, {1, 1, 1}, 0);
      spec.scheduler = factory;
      exp::apply(exp::quality_from_env(), spec);
      const auto result = exp::run_point(
          spec, {{exp::MetricKind::kVcpuAvailability, 0, "v1"},
                 {exp::MetricKind::kVcpuAvailability, 1, "v2"},
                 {exp::MetricKind::kVcpuAvailability, 2, "v3"},
                 {exp::MetricKind::kPcpuUtilization, -1, "pcpu"}});
      table.add_row({label, exp::format_ci_percent(result.metric("v1").ci),
                     exp::format_ci_percent(result.metric("v2").ci),
                     exp::format_ci_percent(result.metric("v3").ci),
                     exp::format_ci_percent(result.metric("pcpu").ci)});
    }
    std::cout << "\nstudy 1 — weighted fairness (target split 57/29/14%)\n"
              << table.render();
  }

  {
    exp::Table table({"scheduler", "VCPU util", "PCPU util", "throughput"});
    for (const std::string name : {"bvt", "sedf", "credit", "rrs"}) {
      const auto system = vm::make_symmetric_config(4, {2, 3}, 3);
      const auto result = bench::run_metrics(
          name, system,
          {{exp::MetricKind::kMeanVcpuUtilization, -1, "util"},
           {exp::MetricKind::kPcpuUtilization, -1, "pcpu"},
           {exp::MetricKind::kThroughput, -1, "thr"}});
      table.add_row({name, exp::format_ci_percent(result.metric("util").ci),
                     exp::format_ci_percent(result.metric("pcpu").ci),
                     exp::format_fixed(result.metric("thr").ci.mean, 3)});
    }
    std::cout << "\nstudy 2 — paper workload under the Xen schedulers\n"
              << table.render();
  }
  return 0;
}
