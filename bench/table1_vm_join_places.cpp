// Reproduces paper Table 1: "Join places in Virtual Machine model" — the
// shared state variables of the stand-alone 2-VCPU VM composed model
// (Figure 2), printed from the actually constructed model's join
// registry (not hard-coded).
#include <iostream>

#include "san/model.hpp"
#include "vm/virtual_machine.hpp"

int main() {
  using namespace vcpusim;

  std::cout << "Table 1 — join places in the Virtual Machine composed model\n"
            << "(2-VCPU VM: Workload_Generator + VM_Job_Scheduler + VCPU1/2; "
               "paper Figure 2)\n\n";

  san::ComposedModel model("VM_2VCPU");
  vm::VmConfig cfg;
  cfg.num_vcpus = 2;
  cfg.sync_ratio_k = 5;
  vm::build_virtual_machine(model, cfg, /*prefix=*/"");

  std::cout << model.render_join_table();

  std::cout << "\nSub-models and activities realized:\n";
  for (const auto& submodel : model.submodels()) {
    std::cout << "  " << submodel->name() << ":";
    for (const auto& activity : submodel->activities()) {
      std::cout << " " << activity->name()
                << (activity->is_instantaneous() ? " (instantaneous)"
                                                 : " (timed)");
    }
    std::cout << "\n";
  }
  return 0;
}
