// Ablation: the RCS skew threshold — the fairness/utilization trade-off
// the paper attributes to relaxed co-scheduling. Small thresholds act
// like strict co-scheduling (tight sibling coupling), large thresholds
// degenerate toward plain round-robin.
#include "bench_util.hpp"
#include "sched/relaxed_co.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — RCS skew-threshold sweep",
      "1 and 4 PCPUs; VMs {2,1,1}; sync 1:5; threshold swept 2..40; "
      "metrics: wide-VM VCPU availability and PCPU utilization");

  exp::Table table({"threshold", "PCPUs", "VCPU1.1 availability",
                    "VCPU2.1 availability", "PCPU utilization"});
  for (const double threshold : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    for (const int pcpus : {1, 4}) {
      exp::RunSpec spec;
      spec.system = vm::make_symmetric_config(pcpus, {2, 1, 1}, 5);
      spec.scheduler = [threshold] {
        sched::RcsOptions options;
        options.skew_threshold = threshold;
        return sched::make_relaxed_co(options);
      };
      exp::apply(exp::quality_from_env(), spec);
      const auto result = exp::run_point(
          spec, {{exp::MetricKind::kVcpuAvailability, 0, "wide"},
                 {exp::MetricKind::kVcpuAvailability, 2, "narrow"},
                 {exp::MetricKind::kPcpuUtilization, -1, "pcpu"}});
      table.add_row({exp::format_fixed(threshold, 0), std::to_string(pcpus),
                     exp::format_ci_percent(result.metric("wide").ci),
                     exp::format_ci_percent(result.metric("narrow").ci),
                     exp::format_ci_percent(result.metric("pcpu").ci)});
    }
  }
  std::cout << "\n" << table.render();
  return 0;
}
