// Shared plumbing for the figure-reproduction binaries: quality-preset
// handling, headers, and the common (algorithm x configuration) runner.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/quality.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"
#include "sched/registry.hpp"
#include "vm/config.hpp"

namespace vcpusim::bench {

/// The paper's three algorithms, in its order.
inline const std::vector<std::string>& paper_algorithms() {
  static const std::vector<std::string> algorithms = {"rrs", "scs", "rcs"};
  return algorithms;
}

inline void print_header(const std::string& title,
                         const std::string& setup_description) {
  const auto quality = exp::quality_from_env();
  std::cout << "==============================================================\n"
            << title << "\n"
            << setup_description << "\n"
            << "simulation: horizon " << quality.end_time << " ticks, warmup "
            << quality.warmup << ", "
            << quality.policy.confidence * 100 << "% confidence, target CI "
            << "half-width " << quality.policy.target_half_width
            << " (set VCPUSIM_QUALITY=fast|paper|full)\n"
            << "==============================================================\n";
}

/// Replication worker threads from the environment (VCPUSIM_JOBS;
/// 0 = all hardware threads). Estimates are bit-identical for every
/// value, so this only changes wall-clock time — see docs/PERFORMANCE.md.
inline std::size_t jobs_from_env() {
  const char* v = std::getenv("VCPUSIM_JOBS");
  if (v == nullptr || *v == '\0') return 1;
  const long long n = std::atoll(v);
  return n < 0 ? 1 : static_cast<std::size_t>(n);
}

/// Evaluate one metric for one algorithm on one system configuration,
/// under the environment-selected quality preset.
inline stats::MetricEstimate run_metric(const std::string& algorithm,
                                        const vm::SystemConfig& system,
                                        const exp::MetricRequest& metric,
                                        std::uint64_t base_seed = 42) {
  exp::RunSpec spec;
  spec.system = system;
  spec.scheduler = sched::make_factory(algorithm);
  spec.base_seed = base_seed;
  spec.lint = true;  // figure runs are long — fail on wiring mistakes early
  spec.jobs = jobs_from_env();
  exp::apply(exp::quality_from_env(), spec);
  auto result = exp::run_point(spec, {metric});
  return result.metrics.front();
}

/// Evaluate several metrics at once (single experiment point).
inline stats::ReplicationResult run_metrics(
    const std::string& algorithm, const vm::SystemConfig& system,
    const std::vector<exp::MetricRequest>& metrics,
    std::uint64_t base_seed = 42) {
  exp::RunSpec spec;
  spec.system = system;
  spec.scheduler = sched::make_factory(algorithm);
  spec.base_seed = base_seed;
  spec.lint = true;  // figure runs are long — fail on wiring mistakes early
  spec.jobs = jobs_from_env();
  exp::apply(exp::quality_from_env(), spec);
  return exp::run_point(spec, metrics);
}

}  // namespace vcpusim::bench
