// Reproduces paper Figure 10: "The averaged VCPU Utilization with four
// PCPUs in different VM setups" — VM sets {2+2}, {2+3}, {2+4}, sync
// ratio swept from 1:5 to 1:2, 4 PCPUs, under RRS, SCS and RCS.
//
// VCPU Utilization is the paper's synchronization-latency metric: the
// portion of time a VCPU processes workload while it holds a PCPU.
#include "bench_util.hpp"

int main() {
  using namespace vcpusim;

  bench::print_header(
      "Figure 10 — averaged VCPU Utilization (synchronization latency)",
      "4 PCPUs; VM sets: set1 = {2,2} VCPUs, set2 = {2,3}, set3 = {2,4}; "
      "sync ratio swept 1:5 .. 1:2");

  const std::vector<std::pair<std::string, std::vector<int>>> sets = {
      {"set1 (2+2 VCPUs)", {2, 2}},
      {"set2 (2+3 VCPUs)", {2, 3}},
      {"set3 (2+4 VCPUs)", {2, 4}},
  };

  for (const auto& [label, vms] : sets) {
    exp::Table table({"sync ratio", "RRS", "SCS", "RCS"});
    for (int k = 5; k >= 2; --k) {
      std::vector<std::string> row = {"1:" + std::to_string(k)};
      for (const auto& algorithm : bench::paper_algorithms()) {
        const auto system = vm::make_symmetric_config(4, vms, k);
        const auto estimate = bench::run_metric(
            algorithm, system,
            {exp::MetricKind::kMeanVcpuUtilization, -1, "u"});
        row.push_back(exp::format_ci_percent(estimate.ci));
      }
      table.add_row(std::move(row));
    }
    std::cout << "\n[" << label << "] VCPU Utilization, mean of all VCPUs "
              << "(95% CI)\n"
              << table.render();
  }
  std::cout << "\nExpected shape (paper IV.C): no algorithm difference when "
               "#VCPU == #PCPU (set1); with over-commit the co-scheduling "
               "algorithms reduce synchronization latency, and RRS degrades "
               "fastest as the sync ratio tightens toward 1:2. Deviation "
               "from the paper: our RCS (guest-aware idle-yield) edges out "
               "SCS instead of trailing it slightly — see EXPERIMENTS.md.\n";
  return 0;
}
