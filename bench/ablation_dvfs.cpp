// Ablation: energy vs availability under DVFS across system sizes.
//
// Every run enables the default four-step frequency/voltage ladder, so
// the energy metric (integral of sum_p f*V^2, docs/MODEL.md) is
// comparable across algorithms: schedulers that never touch
// set_freq_level (rrs, credit, rebalance) burn peak power on every
// PCPU, while the DVFS families (dvfs-cc, dvfs-la) trade frequency for
// queue slack. Each size runs two over-commit shapes — packed (2:1,
// every PCPU saturated) and slack (1:1, barrier stalls leave idle
// windows) — because the interesting question is what the saved energy
// costs in availability on each side of the saturation knee.
//
// With an output path argument the rows are also written as JSON for
// the CI perf-smoke gate (BENCH_dvfs.json: dvfs-cc energy < credit
// energy at every size and shape, availability within tolerance).
#include <fstream>
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"

namespace {

using namespace vcpusim;

struct Row {
  int vcpus = 0;
  std::string commit;
  std::string algorithm;
  stats::MetricEstimate energy;
  stats::MetricEstimate availability;
  stats::MetricEstimate pcpu_util;
};

struct Shape {
  const char* commit;  ///< VCPU:PCPU over-commit label
  int pcpus;
};

std::string json_number(double value) {
  std::ostringstream os;
  os << std::setprecision(17) << value;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcpusim;

  bench::print_header(
      "Ablation — energy vs availability under DVFS",
      "2-VCPU VMs, sync 1:5, packed (2:1) and slack (1:1) over-commit, "
      "default four-step frequency ladder; energy = integral of sum_p "
      "f*V^2");

  const std::vector<std::string> algorithms = {"rrs", "credit", "dvfs-cc",
                                               "dvfs-la", "rebalance"};
  std::vector<Row> rows;

  exp::Table table({"vcpus", "commit", "algorithm", "energy", "availability",
                    "PCPU util"});
  for (const int vcpus : {4, 16, 64}) {
    const int vms = vcpus / 2;
    for (const Shape shape : {Shape{"2:1", vcpus / 2}, Shape{"1:1", vcpus}}) {
      auto system = vm::make_symmetric_config(
          shape.pcpus, std::vector<int>(static_cast<std::size_t>(vms), 2), 5);
      system.dvfs.enabled = true;  // default ladder, initial level = max
      for (const auto& algorithm : algorithms) {
        const auto result = bench::run_metrics(
            algorithm, system,
            {{exp::MetricKind::kEnergy, -1, "energy"},
             {exp::MetricKind::kMeanVcpuAvailability, -1, "avail"},
             {exp::MetricKind::kPcpuUtilization, -1, "pcpu"}});
        Row row;
        row.vcpus = vcpus;
        row.commit = shape.commit;
        row.algorithm = algorithm;
        row.energy = result.metric("energy");
        row.availability = result.metric("avail");
        row.pcpu_util = result.metric("pcpu");
        table.add_row({std::to_string(vcpus), row.commit, algorithm,
                       exp::format_fixed(row.energy.ci.mean, 1) + " ±" +
                           exp::format_fixed(row.energy.ci.half_width, 1),
                       exp::format_ci_percent(row.availability.ci),
                       exp::format_ci_percent(row.pcpu_util.ci)});
        rows.push_back(std::move(row));
      }
    }
  }
  std::cout << "\n" << table.render();

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "ablation_dvfs: cannot open '" << argv[1] << "'\n";
      return 2;
    }
    out << "{\n  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      out << (i != 0 ? "," : "") << "\n    {\"vcpus\": " << row.vcpus
          << ", \"commit\": \"" << row.commit << "\", \"algorithm\": \""
          << row.algorithm << "\", \"energy\": "
          << json_number(row.energy.ci.mean) << ", \"energy_half_width\": "
          << json_number(row.energy.ci.half_width) << ", \"availability\": "
          << json_number(row.availability.ci.mean)
          << ", \"availability_half_width\": "
          << json_number(row.availability.ci.half_width)
          << ", \"pcpu_utilization\": "
          << json_number(row.pcpu_util.ci.mean) << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "\nwrote " << rows.size() << " rows to " << argv[1] << "\n";
  }
  return 0;
}
