// Visualize scheduling behaviour: run the same contended, barrier-heavy
// system under several algorithms and print an ASCII Gantt chart of
// every VCPU ('#' busy, '~' spinning, '.' ready-idle, ' ' inactive),
// plus a barrier-latency report.
//
//   $ ./timeline_demo [ticks] [algorithm...]
#include <cstdlib>
#include <iostream>

#include "san/simulator.hpp"
#include "sched/registry.hpp"
#include "trace/latency.hpp"
#include "trace/timeline.hpp"
#include "vm/system_builder.hpp"

int main(int argc, char** argv) {
  using namespace vcpusim;

  const int ticks = argc > 1 ? std::atoi(argv[1]) : 72;
  std::vector<std::string> algorithms;
  for (int i = 2; i < argc; ++i) algorithms.emplace_back(argv[i]);
  if (algorithms.empty()) algorithms = {"rrs", "scs", "rcs"};

  // A 2-VCPU VM and a 3-VCPU VM with lock-guarded jobs share 2 PCPUs;
  // barriers every 3 jobs.
  auto cfg = vm::make_symmetric_config(2, {2, 3}, 3);
  cfg.vms[1].spinlock.enabled = true;
  cfg.vms[1].spinlock.lock_probability = 0.7;
  cfg.vms[1].spinlock.critical_fraction = 0.5;

  for (const auto& algorithm : algorithms) {
    auto system = vm::build_system(cfg, sched::make_factory(algorithm)());
    trace::TimelineRecorder timeline(*system,
                                     static_cast<std::size_t>(ticks));
    trace::BarrierLatencyAnalyzer latency(*system);

    san::SimulatorConfig config;
    config.end_time = 400.0;
    config.seed = 7;
    san::Simulator sim(config);
    sim.set_model(*system->model);
    sim.add_observer(timeline);
    sim.add_observer(latency);
    sim.run();

    std::cout << "=== " << system->scheduler->name()
              << " (2 PCPUs; VM1 = 2 VCPUs, VM2 = 3 VCPUs + spinlock; "
                 "sync 1:3) ===\n"
              << timeline.render(static_cast<std::size_t>(ticks))
              << "barrier latency: " << latency.report() << "\n";
  }
  return 0;
}
