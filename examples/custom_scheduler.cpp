// The paper's headline use case: plug a *user-defined VCPU scheduling
// algorithm*, written as a plain C function against the published
// interface
//
//   bool schedule(VCPU_host_external* vcpus, int num_vcpu,
//                 PCPU_external* pcpus, int num_pcpu, long timestamp);
//
// into the framework and evaluate it against the built-ins.
//
// The demo algorithm is "longest-remaining-load-first with sync-point
// pinning": PCPUs go to the VCPUs with the most pending work, and a
// VCPU holding a synchronization point (a lock holder, in the paper's
// motivation) is never preempted by this policy while work remains.
//
// The plug-in also uses the C attach hook (the C analogue of
// Scheduler::on_attach, see docs/SCHEDULING.md): the framework calls it
// once at build time with the static topology, so the function can
// pre-size its scratch buffers instead of allocating on every tick and
// never needs lazily-initialized "first call" paths. Note the
// replication-safety line this walks: the scratch statics are fine
// because attach re-sizes them identically for every replication and
// schedule() recomputes their contents from the snapshot alone; a
// static that *accumulated* state across ticks would leak between
// replications and be rejected by the contract checker.
//
// Before evaluating, the scheduler-contract checker vets the function
// statically (replication safety, snapshot read-only discipline) — the
// same check `vcpusim lint` runs; see docs/ANALYZER.md.
#include <algorithm>
#include <iostream>
#include <vector>

#include "exp/quality.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"
#include "sched/contract.hpp"
#include "sched/registry.hpp"
#include "vm/sched_interface.hpp"

namespace {

using vcpusim::vm::PCPU_external;
using vcpusim::vm::VCPU_host_external;
using vcpusim::vm::VCPU_topology_external;

// Scratch buffers reused across ticks. Sized once by llf_attach;
// cleared and refilled from the snapshot on every call, so they carry
// no state between ticks or replications.
std::vector<int> g_free_pcpus;
std::vector<int> g_waiting;

// Called once per replication at build_system time, before the first
// schedule() call — reserve to topology capacity so the per-tick path
// below never allocates.
void llf_attach(const VCPU_topology_external* /*vcpus*/, int num_vcpu,
                int num_pcpu) {
  g_free_pcpus.clear();
  g_free_pcpus.reserve(static_cast<std::size_t>(num_pcpu));
  g_waiting.clear();
  g_waiting.reserve(static_cast<std::size_t>(num_vcpu));
}

// Plain C-style function — exactly what a user of the paper's framework
// would hand to the Scheduling_Func output gate.
bool llf_schedule(VCPU_host_external* vcpus, int num_vcpu,
                  PCPU_external* pcpus, int num_pcpu, long /*timestamp*/) {
  // 1. Preempt active VCPUs that have no work (yield idle), unless they
  //    hold a sync point.
  g_free_pcpus.clear();
  for (int p = 0; p < num_pcpu; ++p) {
    if (pcpus[p].state == 0) g_free_pcpus.push_back(p);
  }
  for (int i = 0; i < num_vcpu; ++i) {
    if (vcpus[i].assigned_pcpu >= 0 && vcpus[i].remaining_load <= 0 &&
        vcpus[i].sync_point == 0) {
      vcpus[i].schedule_out = 1;
      g_free_pcpus.push_back(vcpus[i].assigned_pcpu);
    }
  }
  // 2. Rank waiting VCPUs by remaining load, longest first.
  g_waiting.clear();
  for (int i = 0; i < num_vcpu; ++i) {
    if (vcpus[i].assigned_pcpu < 0) g_waiting.push_back(i);
  }
  std::sort(g_waiting.begin(), g_waiting.end(), [&](int a, int b) {
    if (vcpus[a].remaining_load != vcpus[b].remaining_load) {
      return vcpus[a].remaining_load > vcpus[b].remaining_load;
    }
    return a < b;
  });
  // 3. Hand out the free PCPUs; sync-point holders get a longer slice.
  std::size_t next = 0;
  for (const int v : g_waiting) {
    if (next >= g_free_pcpus.size()) break;
    vcpus[v].schedule_in = g_free_pcpus[next++];
    if (vcpus[v].sync_point != 0) vcpus[v].new_timeslice = 50.0;
  }
  return true;
}

}  // namespace

int main() {
  using namespace vcpusim;

  std::cout << "custom_scheduler: evaluating a user C scheduling function\n"
            << "('longest-load-first + sync pinning') against the paper's "
               "three algorithms\n\n";

  const auto system = vm::make_symmetric_config(4, {2, 4}, 3);
  exp::Table table(
      {"algorithm", "VCPU util (busy/active)", "PCPU util", "throughput"});

  const auto evaluate = [&](const std::string& label,
                            vm::SchedulerFactory factory) {
    exp::RunSpec spec;
    spec.system = system;
    spec.scheduler = std::move(factory);
    exp::apply(exp::quality_from_env(), spec);
    const auto result =
        exp::run_point(spec, {{exp::MetricKind::kMeanVcpuUtilization, -1, "u"},
                              {exp::MetricKind::kPcpuUtilization, -1, "p"},
                              {exp::MetricKind::kThroughput, -1, "t"}});
    table.add_row({label, exp::format_ci_percent(result.metric("u").ci),
                   exp::format_ci_percent(result.metric("p").ci),
                   exp::format_fixed(result.metric("t").ci.mean, 3)});
  };

  // Vet the user function statically before spending simulation time
  // (the same check `vcpusim lint` runs; see docs/ANALYZER.md).
  const vm::SchedulerFactory llf_factory = [] {
    return vm::wrap_c_function(&llf_schedule, "llf", &llf_attach);
  };
  if (const auto diags = sched::check_scheduler_contract("llf", llf_factory);
      !diags.empty()) {
    for (const auto& d : diags) std::cerr << d.to_text() << "\n";
    return 1;
  }
  std::cout << "scheduler contract: llf passes\n\n";

  for (const char* name : {"rrs", "scs", "rcs"}) {
    evaluate(name, sched::make_factory(name));
  }
  evaluate("llf (user C fn)", llf_factory);

  std::cout << table.render()
            << "\n(4 PCPUs, VMs {2,4} VCPUs, sync ratio 1:3, 95% CIs)\n";
  return 0;
}
