// Paired algorithm comparison under common random numbers — the honest
// way to answer "is co-scheduling better than round-robin on this
// host?". Every algorithm runs the same replication seeds, so the CI of
// the per-replication differences is far tighter than what two
// independent runs would give at the same cost; the table prints both
// so the variance reduction is visible. See docs/STATISTICS.md.
//
//   $ ./paired_comparison [vms] [sync_k]
#include <cstdlib>
#include <iostream>

#include "exp/compare.hpp"
#include "exp/quality.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace vcpusim;

  const int vms = argc > 1 ? std::atoi(argv[1]) : 4;
  const int sync_k = argc > 2 ? std::atoi(argv[2]) : 5;
  constexpr int kPcpus = 4;

  exp::RunSpec spec;
  spec.system = vm::make_symmetric_config(
      kPcpus, std::vector<int>(static_cast<std::size_t>(vms), 2), sync_k);
  spec.scheduler = sched::make_factory("rrs");  // ignored by compare_points
  exp::apply(exp::quality_from_env(), spec);
  // Antithetic pairing composes with CRN: mirrored pairs inside each
  // algorithm, common seeds across algorithms.
  spec.controller = stats::ControllerKind::kAntithetic;

  const std::vector<std::string> algorithms = {"rrs", "scs", "rcs", "credit"};
  const auto result = exp::compare_points(
      spec, algorithms,
      {{exp::MetricKind::kMeanVcpuUtilization, -1, "vcpu_util"},
       {exp::MetricKind::kMeanVcpuAvailability, -1, "availability"},
       {exp::MetricKind::kThroughput, -1, "throughput"}});

  std::cout << "paired_comparison: " << vms << " 2-VCPU VMs on " << kPcpus
            << " PCPUs (sync 1:" << sync_k << "), " << result.replications
            << " common-seed replications per algorithm, "
            << result.controller << " controller\n\n"
            << result.estimates_table().render() << "\n"
            << "paired-difference CIs vs " << result.baseline
            << " (independent-runs half-width in parentheses):\n"
            << result.deltas_table().render() << "\n";

  // The variance-reduction payoff, summarized: how much narrower the
  // paired intervals are than differencing independent runs.
  for (std::size_t a = 1; a < result.algorithms.size(); ++a) {
    for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
      const auto& d = result.delta(a, m);
      if (d.unpaired_half_width <= 0) continue;
      std::cout << "  " << result.algorithms[a] << " vs " << result.baseline
                << " on " << result.metric_names[m] << ": paired CI "
                << exp::format_fixed(
                       100.0 * d.paired.half_width / d.unpaired_half_width, 1)
                << "% of the independent width (correlation "
                << exp::format_fixed(d.correlation, 3) << ")\n";
    }
  }
  return 0;
}
