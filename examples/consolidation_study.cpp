// Workload-consolidation what-if — the Cloud use case the paper's
// introduction motivates ("resource sharing and workload consolidation"):
// how many 2-VCPU VMs can a 4-PCPU host absorb before per-VM service
// quality (VCPU utilization while scheduled, and per-VM throughput)
// degrades past a target, and which scheduler sustains the most VMs?
//
//   $ ./consolidation_study [max_vms] [sync_k]
#include <cstdlib>
#include <iostream>

#include "exp/quality.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace vcpusim;

  const int max_vms = argc > 1 ? std::atoi(argv[1]) : 6;
  const int sync_k = argc > 2 ? std::atoi(argv[2]) : 4;
  constexpr int kPcpus = 4;
  constexpr double kUtilTarget = 0.70;

  std::cout << "consolidation_study: packing 2-VCPU VMs onto a " << kPcpus
            << "-PCPU host (sync ratio 1:" << sync_k << ")\n"
            << "service target: VCPU utilization while scheduled >= "
            << exp::format_percent(kUtilTarget) << "\n\n";

  for (const std::string& algorithm : {"rrs", "rcs", "credit"}) {
    exp::Table table({"VMs", "total VCPUs", "VCPU util", "PCPU util",
                      "jobs/tick/VM", "meets target"});
    int sustained = 0;
    for (int vms = 1; vms <= max_vms; ++vms) {
      exp::RunSpec spec;
      spec.system = vm::make_symmetric_config(
          kPcpus, std::vector<int>(static_cast<std::size_t>(vms), 2), sync_k);
      spec.scheduler = sched::make_factory(algorithm);
      exp::apply(exp::quality_from_env(), spec);
      const auto result = exp::run_point(
          spec, {{exp::MetricKind::kMeanVcpuUtilization, -1, "util"},
                 {exp::MetricKind::kPcpuUtilization, -1, "pcpu"},
                 {exp::MetricKind::kThroughput, -1, "thr"}});
      const double util = result.metric("util").ci.mean;
      const bool ok = util >= kUtilTarget;
      if (ok) sustained = vms;
      table.add_row({std::to_string(vms), std::to_string(2 * vms),
                     exp::format_ci_percent(result.metric("util").ci),
                     exp::format_ci_percent(result.metric("pcpu").ci),
                     exp::format_fixed(result.metric("thr").ci.mean / vms, 3),
                     ok ? "yes" : "no"});
    }
    std::cout << "[" << algorithm << "]\n"
              << table.render() << "-> sustains " << sustained
              << " VM(s) at the service target\n\n";
  }
  return 0;
}
