// Quickstart: build the paper's Figure 7 system — two VMs with two VCPUs
// each on a small host — run it under each of the paper's three
// scheduling algorithms, and print the three evaluation metrics.
//
//   $ ./quickstart [pcpus] [sync_k]
#include <cstdlib>
#include <iostream>

#include "exp/quality.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"
#include "sched/registry.hpp"
#include "vm/config.hpp"

int main(int argc, char** argv) {
  using namespace vcpusim;

  const int pcpus = argc > 1 ? std::atoi(argv[1]) : 2;
  const int sync_k = argc > 2 ? std::atoi(argv[2]) : 5;
  if (pcpus < 1 || sync_k < 0) {
    std::cerr << "usage: quickstart [pcpus>=1] [sync_k>=0]\n";
    return 1;
  }

  // A system with two 2-VCPU VMs, default workloads, sync ratio 1:k.
  const vm::SystemConfig system = vm::make_symmetric_config(pcpus, {2, 2}, sync_k);

  std::cout << "vcpusim quickstart: 2 VMs x 2 VCPUs, " << pcpus
            << " PCPUs, sync ratio 1:" << sync_k << "\n\n";

  exp::Table table({"algorithm", "VCPU availability", "PCPU utilization",
                    "VCPU utilization", "replications"});
  for (const std::string& algorithm : {"rrs", "scs", "rcs"}) {
    exp::RunSpec spec;
    spec.system = system;
    spec.scheduler = sched::make_factory(algorithm);
    exp::apply(exp::quality_preset("fast"), spec);

    const auto result = exp::run_point(
        spec, {{exp::MetricKind::kMeanVcpuAvailability},
               {exp::MetricKind::kPcpuUtilization},
               {exp::MetricKind::kMeanVcpuUtilization}});

    table.add_row({algorithm,
                   exp::format_ci_percent(result.metric("mean_vcpu_availability").ci),
                   exp::format_ci_percent(result.metric("pcpu_utilization").ci),
                   exp::format_ci_percent(result.metric("mean_vcpu_utilization").ci),
                   std::to_string(result.replications)});
  }
  std::cout << table.render();
  std::cout << "\n(95% confidence intervals; see bench/ for the paper's "
               "full figure reproductions)\n";
  return 0;
}
