// Using the SAN engine directly — independent of the virtualization
// model — on two classic dependability/performance examples:
//
//  1. An M/M/1 queue validated against its analytic mean queue length.
//  2. A machine failure/repair availability model with probabilistic
//     cases (imperfect repair), the canonical SAN textbook example.
//
// This demonstrates the substrate the VCPU framework is built on: places,
// timed/instantaneous activities, input/output gates, cases, reward
// variables and replicated confidence-interval estimation.
#include <iostream>

#include "san/experiment.hpp"
#include "san/simulator.hpp"
#include "stats/distribution.hpp"

int main() {
  using namespace vcpusim;

  // ---------------------------------------------------------------
  // 1. M/M/1 queue, lambda = 0.5, mu = 1.0. Analytic: E[N] = 1.0.
  // ---------------------------------------------------------------
  {
    const san::ReplicaFactory factory = [](std::size_t) {
      san::Replica replica;
      replica.model = std::make_unique<san::ComposedModel>("MM1");
      auto& q = replica.model->add_submodel("Queue");
      auto jobs = q.add_place<std::int64_t>("jobs", 0);
      auto& arrive = q.add_timed_activity("arrive", stats::make_exponential(0.5));
      arrive.add_output_gate(
          {"enqueue", [jobs](san::GateContext&) { jobs->mut() += 1; }});
      auto& serve = q.add_timed_activity("serve", stats::make_exponential(1.0));
      serve.add_input_gate(
          {"busy", [jobs]() { return jobs->get() > 0; }, nullptr});
      serve.add_output_gate(
          {"dequeue", [jobs](san::GateContext&) { jobs->mut() -= 1; }});
      replica.rewards.push_back(std::make_unique<san::RewardVariable>(
          "mean_jobs", [jobs]() { return static_cast<double>(jobs->get()); },
          1000.0));
      return replica;
    };
    san::ExperimentConfig config;
    config.end_time = 50000.0;
    config.policy.target_half_width = 0.05;
    config.policy.max_replications = 40;
    const auto result = san::run_experiment({"mean_jobs"}, factory, config);
    std::cout << "M/M/1 (lambda=0.5, mu=1): mean queue length = "
              << result.metric("mean_jobs").ci.to_string()
              << "   [analytic: 1.0]\n";
  }

  // ---------------------------------------------------------------
  // 2. Failure/repair availability model: a machine fails at rate
  //    1/1000, repair takes Erlang(2) time with mean 20, and a repair
  //    succeeds with probability 0.9 (case 1) but must be redone with
  //    probability 0.1 (case 2). Steady-state availability compares to
  //    MTBF / (MTBF + MTTR_effective), MTTR_eff = 20 / 0.9.
  // ---------------------------------------------------------------
  {
    const san::ReplicaFactory factory = [](std::size_t) {
      san::Replica replica;
      replica.model = std::make_unique<san::ComposedModel>("FailureRepair");
      auto& m = replica.model->add_submodel("Machine");
      auto up = m.add_place<std::int64_t>("up", 1);

      auto& fail = m.add_timed_activity("fail", stats::make_exponential(0.001));
      fail.add_input_gate({"is_up", [up]() { return up->get() == 1; }, nullptr});
      fail.add_output_gate({"down", [up](san::GateContext&) { up->set(0); }});

      auto& repair =
          m.add_timed_activity("repair", stats::make_erlang(2, 0.1));
      repair.add_input_gate(
          {"is_down", [up]() { return up->get() == 0; }, nullptr});
      san::Case success{0.9, {}};
      success.output_gates.push_back(
          {"restore", [up](san::GateContext&) { up->set(1); }});
      san::Case botched{0.1, {}};
      botched.output_gates.push_back(
          {"redo", [](san::GateContext&) { /* stays down, repair restarts */ }});
      repair.add_case(std::move(success));
      repair.add_case(std::move(botched));

      replica.rewards.push_back(std::make_unique<san::RewardVariable>(
          "availability",
          [up]() { return static_cast<double>(up->get()); }, 5000.0));
      return replica;
    };
    san::ExperimentConfig config;
    config.end_time = 2'000'000.0;
    config.policy.target_half_width = 0.002;
    config.policy.max_replications = 40;
    const auto result = san::run_experiment({"availability"}, factory, config);
    const double analytic = 1000.0 / (1000.0 + 20.0 / 0.9);
    std::cout << "failure/repair: availability = "
              << result.metric("availability").ci.to_string()
              << "   [analytic: " << analytic << "]\n";
  }
  return 0;
}
